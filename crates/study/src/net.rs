//! TCP transport for the spooled distributed sweep: an elastic worker
//! fleet over sockets, with heartbeats and deterministic fault injection.
//!
//! The spool protocol in [`crate::dist`] shares work through a
//! filesystem; this module adds the transport the paper's WAN-scale
//! deployments need: the coordinator ([`TcpSweep`]) listens on a socket,
//! workers ([`TcpWorker`]) dial in from anywhere, and tasks, results, and
//! heartbeats flow as length-prefixed [`simcal_sim::codec`] frames
//! ([`WireMsg`]). The spool stays underneath as the durable journal —
//! every accepted result is written through [`dist`]'s checksummed,
//! atomically-renamed result files, so a crashed coordinator resumes with
//! [`TcpSweep::with_resume`] exactly like the filesystem transport does.
//!
//! ## Protocol
//!
//! Each connection is **windowed and pipelined** (codec v5): the worker
//! sends `Hello` once (advertising `threads`/`engine_shards`), then
//! loops `ClaimN { max, holding }` → (`TaskBatch` | `Heartbeat` |
//! `Drain`), streaming a `Result` back as each task finishes and
//! re-claiming *before* its queue drains so the claim round trip hides
//! behind compute. The coordinator tracks a per-connection in-flight
//! *set* and sizes each grant from an adaptive
//! [`ClaimWindow`](crate::backoff::ClaimWindow): start at 1, double on a
//! full accepted window, halve on any requeue, cap from observed
//! claim→result latency vs per-task duration — so sub-millisecond tasks
//! batch aggressively while long calibration tasks degrade to the old
//! lock-step cadence. A claim the window (or a momentarily dry spool)
//! cannot satisfy is **parked**, not refused: the coordinator withholds
//! the grant and retries it on every accepted result, heartbeat, and
//! poll tick, answering dry spells with `Heartbeat` liveness frames so
//! the waiting worker never burns a backoff sleep (v4 peers, which block
//! on every claim, still get their immediate `Heartbeat` "back off and
//! re-claim" answer). `Drain` means "no work will ever come; goodbye",
//! answered with `Bye`. A background ticker on each
//! worker connection sends `Heartbeat` frames at a fixed interval so the
//! coordinator can tell slow from dead. v4 workers still interoperate:
//! their lock-step `Claim` is served as `ClaimN { max: 1, holding: [] }`
//! with single-`Task` replies.
//!
//! When the coordinator is started with an auth token it opens every
//! connection with `AuthChallenge { nonce }` and serves no tasks (and
//! journals no results) until the worker proves the shared secret with
//! `AuthProof` ([`crate::auth`], HMAC-SHA256 over the nonce). A wrong or
//! missing proof earns a structured `Reject` and a counted close.
//! Listening on a non-loopback interface *requires* a token; loopback
//! stays zero-config.
//!
//! ## Failure handling
//!
//! The in-flight-set generalization of PR 7's race-free loss argument:
//! a worker's `ClaimN.holding` lists every task it has claimed on this
//! connection but not yet resulted, and frames on one socket are
//! ordered, so any outstanding task *missing* from an arriving claim's
//! `holding` can no longer produce a result — its `Result` frame was
//! lost. Those tasks are requeued on the spot (shrinking the window).
//! The *whole* outstanding window is requeued when the connection dies,
//! the heartbeat deadline lapses with no frame (the same
//! `--stall-timeout` knob the process transport uses), or a corrupt
//! repeat-offender gets cut. Corrupt `Result` frames (bad checksum,
//! undecodable payload, name mismatch) are counted, requeued once, and
//! cut the connection on a repeat. If the whole fleet goes quiet for a
//! stall window the coordinator requeues all orphans and drains the
//! spool locally, so the sweep terminates within one stall window of
//! the last external progress no matter what the workers do. Workers
//! reconnect through the shared seeded
//! [`Backoff`](crate::backoff::Backoff) dialer, dropping their local
//! queue (the coordinator requeues that window — recomputing is safe,
//! double-journaling is impossible).
//!
//! ## Fault injection
//!
//! [`FaultPlan`] deterministically injures a worker's outbound frame
//! stream — kill after N tasks, drop/truncate exactly one frame,
//! partition (shut down) the connection, delay every k-th frame, corrupt
//! a result checksum. Plans parse from compact `key=value` specs (the
//! CLI's `--fault`) or derive from a seed, and the chaos tests assert the
//! merged results stay bit-identical to a local [`SweepRunner`] run under
//! every schedule.

use std::collections::{HashSet, VecDeque};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simcal_sim::codec::{
    encode_msg, encode_result_msg, encode_task_batch_msg, encode_task_msg, read_frame,
    scenario_from_json, write_frame, write_frame_text, FrameError, Json, WireMsg,
};
use simcal_sim::Scenario;

use crate::auth;
use crate::backoff::{Backoff, ClaimWindow, MAX_CLAIM_WINDOW};
use crate::dist::{
    count_results, fnv1a, merge_results, requeue_orphans, requeue_task, result_path, resume_spool,
    run_worker_sharded, spool_tasks, sweep_result_from_json, sweep_result_to_json,
    unfinished_claims, write_atomic, write_result_text, DistError, SpoolSource,
};
use crate::sweep::{SweepResult, SweepRunner};

/// How often a connection handler wakes from a blocked read to check the
/// done flag and the heartbeat deadline.
const HANDLER_POLL: Duration = Duration::from_millis(25);

/// Ceiling on the monitor loop's condvar wait: the longest a dialing
/// worker can sit in the non-blocking listener's backlog before the
/// monitor's next `accept` picks it up. Result progress wakes the
/// monitor immediately; this cap only bounds accept latency.
const ACCEPT_POLL_CAP: Duration = Duration::from_millis(5);

/// How long a handler waits for a worker's `Bye` after sending `Drain`.
/// Longer than the worker's idle re-claim backoff cap, so a worker
/// sleeping between claims still sees the `Drain` inside the window.
const DRAIN_WAIT: Duration = Duration::from_secs(1);

/// Local-drain recovery rounds before the coordinator gives up and lets
/// the merge report what is missing (mirrors `dist::MAX_RECOVERIES`).
const MAX_RECOVERIES: u32 = 3;

fn net_err(addr: &str, msg: impl Into<String>) -> DistError {
    DistError::Net { addr: addr.to_string(), msg: msg.into() }
}

// ---- fault injection -------------------------------------------------------

/// A deterministic fault schedule for one [`TcpWorker`].
///
/// Frame ordinals are 1-based and count every frame the worker *attempts*
/// to send, across all of its threads and reconnects (heartbeats
/// included), so a given plan injures the same point in the stream on
/// every run with the same timing-insensitive schedule. All faults are
/// one-shot except `delay_every`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Abruptly kill the whole worker (no `Drain`, no `Bye`, sockets
    /// reset) after it has completed this many tasks.
    pub kill_after_tasks: Option<u64>,
    /// Silently swallow the Nth outbound frame (the peer never sees it).
    pub drop_frame: Option<u64>,
    /// Send only half of the Nth outbound frame, then break the
    /// connection mid-frame.
    pub truncate_frame: Option<u64>,
    /// Shut the connection down (both directions, once) after this many
    /// outbound frames — a network partition the worker heals by
    /// redialing.
    pub partition_after: Option<u64>,
    /// Sleep `ms` before every `k`-th outbound frame: `(k, ms)` — a slow
    /// worker, not a broken one.
    pub delay_every: Option<(u64, u64)>,
    /// Flip the checksum on the Nth `Result` frame the worker sends, so
    /// the coordinator sees a corrupt result.
    pub corrupt_result: Option<u64>,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Derive one fault deterministically from a seed — the chaos oracle
    /// iterates seeds to sweep the fault space.
    pub fn seeded(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_1A17);
        let mut plan = Self::default();
        match rng.random_range(0..6u64) {
            0 => plan.kill_after_tasks = Some(rng.random_range(1..3u64)),
            1 => plan.drop_frame = Some(rng.random_range(2..8u64)),
            2 => plan.truncate_frame = Some(rng.random_range(2..8u64)),
            3 => plan.partition_after = Some(rng.random_range(1..6u64)),
            4 => plan.delay_every = Some((rng.random_range(2..5u64), rng.random_range(10..40u64))),
            _ => plan.corrupt_result = Some(rng.random_range(1..3u64)),
        }
        plan
    }

    /// Parse a compact spec: comma-separated `key=value` pairs from
    /// `kill-after`, `drop-frame`, `truncate-frame`, `partition-after`,
    /// `delay-every` (value `KxMS`), `corrupt-result` — or a lone
    /// `seed=N` which expands through [`FaultPlan::seeded`].
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        let mut seed = None;
        for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, val) =
                part.split_once('=').ok_or_else(|| format!("fault {part:?} is not key=value"))?;
            let num = |v: &str| {
                v.parse::<u64>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("fault {part:?} needs a positive integer"))
            };
            match key {
                "kill-after" => plan.kill_after_tasks = Some(num(val)?),
                "drop-frame" => plan.drop_frame = Some(num(val)?),
                "truncate-frame" => plan.truncate_frame = Some(num(val)?),
                "partition-after" => plan.partition_after = Some(num(val)?),
                "delay-every" => {
                    let (k, ms) = val
                        .split_once('x')
                        .ok_or_else(|| format!("fault {part:?} wants delay-every=KxMS"))?;
                    plan.delay_every = Some((num(k)?, num(ms)?));
                }
                "corrupt-result" => plan.corrupt_result = Some(num(val)?),
                "seed" => seed = Some(num(val)?),
                other => return Err(format!("unknown fault key {other:?}")),
            }
        }
        match seed {
            Some(s) if plan.is_empty() => Ok(Self::seeded(s)),
            Some(_) => Err("fault seed=N cannot be combined with explicit faults".to_string()),
            None => Ok(plan),
        }
    }

    /// The spec string [`FaultPlan::parse`] round-trips (empty for no
    /// faults).
    pub fn spec(&self) -> String {
        let mut parts = Vec::new();
        if let Some(n) = self.kill_after_tasks {
            parts.push(format!("kill-after={n}"));
        }
        if let Some(n) = self.drop_frame {
            parts.push(format!("drop-frame={n}"));
        }
        if let Some(n) = self.truncate_frame {
            parts.push(format!("truncate-frame={n}"));
        }
        if let Some(n) = self.partition_after {
            parts.push(format!("partition-after={n}"));
        }
        if let Some((k, ms)) = self.delay_every {
            parts.push(format!("delay-every={k}x{ms}"));
        }
        if let Some(n) = self.corrupt_result {
            parts.push(format!("corrupt-result={n}"));
        }
        parts.join(",")
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            write!(f, "none")
        } else {
            write!(f, "{}", self.spec())
        }
    }
}

// ---- the coordinator -------------------------------------------------------

/// Per-connection transport observability: who served what, at what
/// cost. One report per connection that introduced itself, pushed into
/// [`TcpSummary::per_worker`] when the connection closes.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// The worker's `Hello` name.
    pub name: String,
    /// Advertised worker threads (0 = unadvertised, e.g. a v4 peer).
    pub threads: u64,
    /// Advertised engine shards per task (0 = unadvertised).
    pub engine_shards: u64,
    /// Results this connection delivered (accepted or corrupt).
    pub tasks: usize,
    /// Frames read from this connection.
    pub frames_in: u64,
    /// Frames written to this connection.
    pub frames_out: u64,
    /// Bytes read from this connection.
    pub bytes_in: u64,
    /// Bytes written to this connection.
    pub bytes_out: u64,
    /// Mean claim→first-result latency in whole microseconds (`None`
    /// before any result).
    pub mean_rtt_us: Option<u64>,
    /// The claim window when the connection closed.
    pub final_window: usize,
}

impl std::fmt::Display for WorkerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: caps={}t/{}s tasks={} frames={}in/{}out bytes={}in/{}out window={}",
            self.name,
            self.threads,
            self.engine_shards,
            self.tasks,
            self.frames_in,
            self.frames_out,
            self.bytes_in,
            self.bytes_out,
            self.final_window,
        )?;
        match self.mean_rtt_us {
            Some(us) => write!(f, " rtt={us}us"),
            None => write!(f, " rtt=n/a"),
        }
    }
}

/// What happened during a TCP sweep beyond the results: fleet membership
/// and every recovery path's counter.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TcpSummary {
    /// Corrupt `Result` frames (or spooled records) discarded.
    pub corrupt_results: usize,
    /// Tasks put back in the queue after their worker lost them.
    pub requeued_tasks: usize,
    /// `Hello` frames received (connections that introduced themselves).
    pub workers_joined: usize,
    /// Connections that left cleanly (`Drain`/`Bye`).
    pub workers_left: usize,
    /// Connections declared dead: heartbeat deadline passed, broken
    /// socket, or cut for repeated corruption.
    pub dead_workers: usize,
    /// Connections refused for a wrong or missing auth proof.
    pub auth_rejects: usize,
    /// Stall-recovery rounds where the coordinator drained the spool
    /// locally because the fleet went quiet.
    pub recoveries: u32,
    /// One transport report per connection that said `Hello`, in
    /// connection order.
    pub per_worker: Vec<WorkerReport>,
}

impl TcpSummary {
    /// True when no fault-recovery path fired (fleet membership counters
    /// aside).
    pub fn is_clean(&self) -> bool {
        self.corrupt_results == 0
            && self.requeued_tasks == 0
            && self.dead_workers == 0
            && self.auth_rejects == 0
            && self.recoveries == 0
    }
}

impl std::fmt::Display for TcpSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "corrupt_results={} requeued_tasks={} workers_joined={} workers_left={} \
             dead_workers={} auth_rejects={} recoveries={}",
            self.corrupt_results,
            self.requeued_tasks,
            self.workers_joined,
            self.workers_left,
            self.dead_workers,
            self.auth_rejects,
            self.recoveries
        )
    }
}

/// Why a connection handler stopped.
enum Close {
    /// We drained the worker (or it said goodbye after our `Drain`).
    Drained,
    /// The worker left on its own terms (`Drain`/`Bye`, or a clean close
    /// with nothing in flight).
    Left,
    /// Heartbeat deadline passed, socket broke, frames corrupted, or the
    /// worker repeatedly sent corrupt results.
    Dead,
    /// Refused: wrong or missing auth proof (counted separately — a
    /// stranger turned away is not a worker lost).
    Rejected,
}

/// A claim's answer, from the coordinator's shared state.
enum Grant {
    /// Hand out these tasks (scenarios still in wire text; never empty).
    Tasks(Vec<(usize, String)>),
    /// Queue empty but claims still unfinished: worker should back off
    /// and re-claim.
    Wait,
    /// Everything is done; drain the worker.
    Drain,
    /// Shared state hit a fatal error; close the connection.
    Fatal,
}

/// A byte-and-frame-counting wrapper around one connection's stream.
/// The handler is the only reader *and* only writer of its socket, so
/// plain counters suffice.
struct Metered<'a> {
    stream: &'a TcpStream,
    frames_in: u64,
    frames_out: u64,
    bytes_in: u64,
    bytes_out: u64,
}

impl<'a> Metered<'a> {
    fn new(stream: &'a TcpStream) -> Self {
        Self { stream, frames_in: 0, frames_out: 0, bytes_in: 0, bytes_out: 0 }
    }

    fn read_msg(&mut self) -> Result<WireMsg, FrameError> {
        let msg = read_frame(self)?;
        self.frames_in += 1;
        Ok(msg)
    }

    fn send(&mut self, msg: &WireMsg) -> std::io::Result<()> {
        write_frame(self, msg)?;
        self.frames_out += 1;
        Ok(())
    }

    /// Send an already-encoded frame body (the spliced grant path).
    fn send_text(&mut self, body: &str) -> std::io::Result<()> {
        write_frame_text(self, body)?;
        self.frames_out += 1;
        Ok(())
    }
}

impl std::io::Read for Metered<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = std::io::Read::read(&mut self.stream, buf)?;
        self.bytes_in += n as u64;
        Ok(n)
    }
}

impl std::io::Write for Metered<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = std::io::Write::write(&mut self.stream, buf)?;
        self.bytes_out += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        std::io::Write::flush(&mut self.stream)
    }
}

/// Per-connection coordinator state: the in-flight set, the adaptive
/// window, the latency probes, and the auth gate.
struct ConnState {
    /// Task indices granted on this connection with no result yet.
    outstanding: HashSet<usize>,
    window: ClaimWindow,
    /// Head task of the latest grant, with its grant instant: the
    /// claim→first-result RTT probe (queueing behind batch siblings
    /// would pollute per-task RTT, so only the head is timed).
    rtt_probe: Option<(usize, Instant)>,
    /// When the previous result arrived, for per-task-duration samples.
    last_result_at: Option<Instant>,
    name: String,
    threads: u64,
    engine_shards: u64,
    tasks_served: usize,
    /// True once the shared secret is proven (or never demanded).
    authed: bool,
    /// Pre-auth claims tolerated so far (exactly one is legal: a v5
    /// worker's first claim races its own auth proof on the wire).
    preauth_claims: u32,
    nonce: u64,
    /// Unsatisfied demand from the worker's last claim. When the window
    /// is full at claim time the reply is *withheld*, not refused: the
    /// next accepted result frees a slot and triggers the grant, so
    /// lock-step never pays a backoff sleep between tasks.
    deferred: u64,
    /// The worker speaks v4 (`Claim`/`Task`/`Heartbeat` shapes).
    legacy: bool,
}

impl ConnState {
    fn new(window: Option<usize>, authed: bool, nonce: u64) -> Self {
        Self {
            outstanding: HashSet::new(),
            window: make_window(window, 0),
            rtt_probe: None,
            last_result_at: None,
            name: String::new(),
            threads: 0,
            engine_shards: 0,
            tasks_served: 0,
            authed,
            preauth_claims: 0,
            nonce,
            deferred: 0,
            legacy: false,
        }
    }

    fn report(&self, m: &Metered<'_>) -> WorkerReport {
        WorkerReport {
            name: self.name.clone(),
            threads: self.threads,
            engine_shards: self.engine_shards,
            tasks: self.tasks_served,
            frames_in: m.frames_in,
            frames_out: m.frames_out,
            bytes_in: m.bytes_in,
            bytes_out: m.bytes_out,
            mean_rtt_us: self.window.mean_rtt_us(),
            final_window: self.window.window(),
        }
    }
}

/// The connection's window controller: pinned when `--claim-window N`,
/// otherwise adaptive with a starting cap from the worker's advertised
/// thread count (unadvertised ⇒ a modest default).
fn make_window(fixed: Option<usize>, threads: u64) -> ClaimWindow {
    match fixed {
        Some(n) => ClaimWindow::fixed(n),
        None => ClaimWindow::auto(((threads as usize) * 2).max(4)),
    }
}

/// State shared between the accept/monitor loop and every connection
/// handler thread.
struct CoordShared {
    spool: PathBuf,
    /// Manifest scenario names, indexed by task index.
    names: Vec<String>,
    source: SpoolSource,
    done: AtomicBool,
    stall: Duration,
    /// `Some(n)` pins every connection's claim window to `n`; `None` is
    /// adaptive (the default).
    claim_window: Option<usize>,
    /// The shared secret workers must prove; `None` = zero-config.
    auth_token: Option<String>,
    fatal: Mutex<Option<DistError>>,
    /// Task indices already forgiven one corrupt result.
    corrupt_seen: Mutex<HashSet<usize>>,
    /// Results journaled over the socket — the monitor loop's cue to
    /// re-scan the results directory, so an idle tick costs an atomic
    /// load instead of a directory walk.
    journaled: AtomicUsize,
    /// Distinct result files on disk (seeded with what a resume found).
    /// When it reaches `names.len()`, the journaling handler flips
    /// `done` itself — completion is detected the moment the last
    /// result lands, not a poll tick later. Requeue races can in theory
    /// overcount (two connections journaling the same index between
    /// each other's existence checks); the monitor's directory scan
    /// stays authoritative, so a premature `done` only costs a
    /// recovery pass, never a wrong artifact.
    done_results: AtomicUsize,
    /// Wakes the monitor loop out of its poll sleep the moment a
    /// handler journals a result.
    progress_lock: Mutex<()>,
    progress: std::sync::Condvar,
    corrupt_results: AtomicUsize,
    requeued: AtomicUsize,
    joined: AtomicUsize,
    left: AtomicUsize,
    dead: AtomicUsize,
    rejected: AtomicUsize,
    conn_seq: AtomicU64,
    reports: Mutex<Vec<WorkerReport>>,
}

impl CoordShared {
    fn fatal(&self, e: DistError) {
        let mut slot = self.fatal.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    /// Put a lost task back in the queue (benign if it already has a
    /// result or is already queued).
    fn requeue(&self, index: usize) {
        match requeue_task(&self.spool, index) {
            Ok(true) => {
                self.requeued.fetch_add(1, Ordering::SeqCst);
            }
            Ok(false) => {}
            Err(e) => self.fatal(e),
        }
    }

    /// Claim up to `max` tasks for one grant.
    fn next_batch(&self, max: usize) -> Grant {
        if self.done.load(Ordering::SeqCst) || max == 0 {
            return if max == 0 { Grant::Wait } else { Grant::Drain };
        }
        match self.source.try_claim_batch(max) {
            Ok(tasks) if !tasks.is_empty() => Grant::Tasks(tasks),
            Ok(_) => match unfinished_claims(&self.spool) {
                Ok(0) => Grant::Drain,
                Ok(_) => Grant::Wait,
                Err(e) => {
                    self.fatal(e);
                    Grant::Fatal
                }
            },
            Err(e) => {
                self.fatal(e);
                Grant::Fatal
            }
        }
    }

    /// Validate and journal one `Result` frame. Returns `false` when the
    /// connection should be cut (repeated corruption, nonsense index, or
    /// a fatal spool error).
    fn accept_result(&self, index: usize, sum: u64, payload: &Json) -> bool {
        // One serialization pass covers both the checksum and the
        // journal write: a payload whose text survives the fnv check is
        // exactly the worker's canonical encoding, so it can be spliced
        // into the result record verbatim. The struct decode stays — it
        // is what proves the payload is a well-formed `SweepResult` for
        // the advertised scenario before anything touches the spool.
        let text = payload.write();
        let valid = index < self.names.len()
            && fnv1a(text.as_bytes()) == sum
            && sweep_result_from_json(payload).is_ok_and(|r| r.name == self.names[index]);
        if valid {
            let fresh = !result_path(&self.spool, index).exists();
            return match write_result_text(&self.spool, index, &text) {
                Ok(()) => {
                    self.journaled.fetch_add(1, Ordering::SeqCst);
                    if fresh
                        && self.done_results.fetch_add(1, Ordering::SeqCst) + 1 >= self.names.len()
                    {
                        // The final result: flip `done` and wake the
                        // monitor now, not a poll tick later. Only this
                        // flip notifies — waking the monitor per result
                        // would trade a context switch plus directory
                        // scan for every frame on a busy box. Flag
                        // first, then lock-and-notify: the monitor
                        // re-checks `done` under this lock before it
                        // waits, so the wakeup cannot be lost.
                        self.done.store(true, Ordering::SeqCst);
                        drop(self.progress_lock.lock());
                        self.progress.notify_all();
                    }
                    true
                }
                Err(e) => {
                    self.fatal(e);
                    false
                }
            };
        }
        self.corrupt_results.fetch_add(1, Ordering::SeqCst);
        if index < self.names.len() && self.corrupt_seen.lock().insert(index) {
            // First offense for this task: requeue and keep the
            // connection (the corruption may have been in transit).
            self.requeue(index);
            true
        } else {
            false
        }
    }

    /// Send a structured refusal and count it.
    fn reject(&self, m: &mut Metered<'_>, reason: &str) -> Close {
        let _ = m.send(&WireMsg::Reject { reason: reason.to_string() });
        self.rejected.fetch_add(1, Ordering::SeqCst);
        Close::Rejected
    }

    /// Serve one claim: requeue what the `holding` list proves lost,
    /// record the demand, and grant what the window allows. `legacy`
    /// selects the v4 single-`Task`/`Heartbeat` reply shapes.
    fn serve_claim(
        &self,
        m: &mut Metered<'_>,
        ctl: &mut ConnState,
        max: u64,
        holding: &[u64],
        legacy: bool,
    ) -> Option<Close> {
        ctl.legacy = legacy;
        if !ctl.authed {
            // A v5 worker's first claim legitimately races its own auth
            // proof (Hello, ClaimN, AuthProof arrive in that order), so
            // one pre-auth claim parks its demand until the proof lands
            // (the verified `AuthProof` pumps it); a second claim proves
            // the peer is not going to authenticate. Legacy workers
            // cannot authenticate at all — nudge the first claim so
            // their lock-step loop re-claims into the reject.
            if ctl.preauth_claims > 0 {
                return Some(self.reject(m, "authentication required"));
            }
            ctl.preauth_claims += 1;
            if legacy {
                let nudge = WireMsg::Heartbeat { inflight: None };
                return m.send(&nudge).is_err().then_some(Close::Dead);
            }
            ctl.deferred = max;
            return None;
        }
        // The loss detector: any outstanding task missing from `holding`
        // can no longer produce a result on this ordered socket — the
        // worker sends every Result before the ClaimN that omits it.
        let held: HashSet<usize> = holding.iter().map(|i| *i as usize).collect();
        let lost: Vec<usize> =
            ctl.outstanding.iter().filter(|i| !held.contains(i)).copied().collect();
        if !lost.is_empty() {
            ctl.window.on_requeue();
            for index in lost {
                ctl.outstanding.remove(&index);
                if ctl.rtt_probe.is_some_and(|(probe, _)| probe == index) {
                    ctl.rtt_probe = None;
                }
                self.requeue(index);
            }
        }
        ctl.deferred = max;
        self.pump(m, ctl)
    }

    /// Try to satisfy the connection's recorded demand. A full window or
    /// a momentarily dry spool *withholds* the grant (v5 workers keep
    /// computing; the next result, heartbeat, or poll tick retries it) —
    /// a dry spool additionally answers with a `Heartbeat` so the
    /// waiting worker can tell a busy coordinator from a dead one. A v4
    /// worker never lands in the withhold path: its claim empties
    /// `outstanding` first, so the allowance is never zero and it always
    /// gets its `Task`-or-`Heartbeat` answer immediately.
    fn pump(&self, m: &mut Metered<'_>, ctl: &mut ConnState) -> Option<Close> {
        if ctl.deferred == 0 || !ctl.authed {
            return None;
        }
        let allowance = ctl.window.window().saturating_sub(ctl.outstanding.len());
        let want = (ctl.deferred as usize).min(allowance).min(MAX_CLAIM_WINDOW);
        if want == 0 {
            return None;
        }
        match self.next_batch(want) {
            Grant::Tasks(tasks) => {
                ctl.deferred = 0;
                if ctl.outstanding.is_empty() {
                    // A grant after an idle pipe: duration samples across
                    // the gap would count idle time as compute.
                    ctl.last_result_at = None;
                }
                let indices: Vec<usize> = tasks.iter().map(|(i, _)| *i).collect();
                // Scenario texts splice straight from the spool records
                // into the frame — the raw-encoding twin of the worker's
                // `Result` path, pinned byte-identical to the structured
                // encoder by the codec tests.
                let body = if ctl.legacy {
                    let (index, scenario) = tasks.into_iter().next().expect("non-empty grant");
                    encode_task_msg(index as u64, &scenario)
                } else {
                    let wire: Vec<(u64, String)> =
                        tasks.into_iter().map(|(i, sc)| (i as u64, sc)).collect();
                    encode_task_batch_msg(&wire)
                };
                if m.send_text(&body).is_err() {
                    for index in indices {
                        self.requeue(index);
                    }
                    return Some(Close::Dead);
                }
                if ctl.rtt_probe.is_none() {
                    ctl.rtt_probe = Some((indices[0], Instant::now()));
                }
                ctl.outstanding.extend(indices);
                None
            }
            Grant::Wait => {
                // "Claimed-but-unfinished tasks exist elsewhere": a v4
                // worker needs its lock-step answer now; a v5 worker's
                // demand stays parked — requeued orphans reach it within
                // a poll tick — with a liveness heartbeat so its
                // patience timer keeps finding frames.
                if ctl.legacy {
                    ctl.deferred = 0;
                }
                let nudge = WireMsg::Heartbeat { inflight: None };
                m.send(&nudge).is_err().then_some(Close::Dead)
            }
            Grant::Drain => {
                ctl.deferred = 0;
                Some(self.drain_peer(m))
            }
            Grant::Fatal => Some(Close::Dead),
        }
    }

    /// Drive one worker connection until it drains, leaves, or dies.
    fn handle(&self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if stream.set_read_timeout(Some(HANDLER_POLL)).is_err() {
            return;
        }
        let mut m = Metered::new(&stream);
        let require_auth = self.auth_token.is_some();
        // The nonce only needs per-connection uniqueness (it salts the
        // MAC against replay across connections), not unpredictability
        // of a CSPRNG grade: time + pid + connection ordinal suffice.
        let nonce = {
            let t = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_nanos() as u64);
            let seq = self.conn_seq.fetch_add(1, Ordering::SeqCst);
            t ^ seq.rotate_left(32) ^ u64::from(std::process::id()).rotate_left(17)
        };
        let mut ctl = ConnState::new(self.claim_window, !require_auth, nonce);
        if require_auth && m.send(&WireMsg::AuthChallenge { nonce }).is_err() {
            return;
        }
        let mut last_alive = Instant::now();
        let close = loop {
            if self.done.load(Ordering::SeqCst) && ctl.outstanding.is_empty() {
                break self.drain_peer(&mut m);
            }
            match m.read_msg() {
                Ok(msg) => {
                    last_alive = Instant::now();
                    match msg {
                        WireMsg::Hello { worker, threads, engine_shards } => {
                            self.joined.fetch_add(1, Ordering::SeqCst);
                            ctl.name = worker;
                            ctl.threads = threads;
                            ctl.engine_shards = engine_shards;
                            // Hello precedes any grant, so re-deriving
                            // the window from the advertised capability
                            // loses nothing.
                            ctl.window = make_window(self.claim_window, threads);
                        }
                        WireMsg::Claim => {
                            if let Some(close) = self.serve_claim(&mut m, &mut ctl, 1, &[], true) {
                                break close;
                            }
                        }
                        WireMsg::ClaimN { max, holding } => {
                            if let Some(close) =
                                self.serve_claim(&mut m, &mut ctl, max, &holding, false)
                            {
                                break close;
                            }
                        }
                        WireMsg::AuthProof { mac } => match &self.auth_token {
                            Some(token) if auth::verify(token, ctl.nonce, &mac) => {
                                ctl.authed = true;
                                // The claim that raced this proof may be
                                // parked; grant it now.
                                if let Some(close) = self.pump(&mut m, &mut ctl) {
                                    break close;
                                }
                            }
                            Some(_) => break self.reject(&mut m, "bad auth token"),
                            // A tokened worker against an open
                            // coordinator: proof of nothing, harmless.
                            None => {}
                        },
                        WireMsg::Result { index, sum, payload } => {
                            if !ctl.authed {
                                break self.reject(&mut m, "authentication required");
                            }
                            let index = index as usize;
                            let now = Instant::now();
                            if ctl.outstanding.remove(&index) {
                                let rtt = ctl
                                    .rtt_probe
                                    .take_if(|(probe, _)| *probe == index)
                                    .map(|(_, granted)| now - granted);
                                // A duration sample is only honest when
                                // the worker provably had queued work
                                // since the last result.
                                let task = ctl
                                    .last_result_at
                                    .filter(|_| !ctl.outstanding.is_empty())
                                    .map(|prev| now - prev);
                                ctl.window.on_result(rtt, task);
                                ctl.last_result_at = Some(now);
                            }
                            ctl.tasks_served += 1;
                            if !self.accept_result(index, sum, &payload) {
                                break Close::Dead;
                            }
                            // A freed window slot may unblock a
                            // withheld grant.
                            if let Some(close) = self.pump(&mut m, &mut ctl) {
                                break close;
                            }
                        }
                        WireMsg::Heartbeat { .. } => {
                            // A parked grant may have become servable
                            // (another connection's orphans requeued).
                            if let Some(close) = self.pump(&mut m, &mut ctl) {
                                break close;
                            }
                        }
                        WireMsg::Drain => {
                            for index in ctl.outstanding.drain() {
                                self.requeue(index);
                            }
                            let _ = m.send(&WireMsg::Bye);
                            break Close::Left;
                        }
                        WireMsg::Bye => break Close::Left,
                        // A worker has no business sending coordinator
                        // frames.
                        WireMsg::Task { .. }
                        | WireMsg::TaskBatch { .. }
                        | WireMsg::AuthChallenge { .. }
                        | WireMsg::Reject { .. } => break Close::Dead,
                    }
                }
                Err(FrameError::TimedOut) => {
                    if let Some(close) = self.pump(&mut m, &mut ctl) {
                        break close;
                    }
                    if last_alive.elapsed() > self.stall {
                        break Close::Dead;
                    }
                }
                // A close without a goodbye is unclean, whatever was in
                // flight (clean leaves go through Drain/Bye above), and
                // so is any framing error.
                Err(_) => break Close::Dead,
            }
        };
        // Whole-window recovery: everything this connection still holds
        // goes back in the queue.
        for index in ctl.outstanding.drain() {
            self.requeue(index);
        }
        match close {
            Close::Drained | Close::Left => {
                self.left.fetch_add(1, Ordering::SeqCst);
            }
            Close::Dead => {
                self.dead.fetch_add(1, Ordering::SeqCst);
            }
            Close::Rejected => {}
        }
        if !ctl.name.is_empty() {
            self.reports.lock().push(ctl.report(&m));
        }
        let _ = stream.shutdown(Shutdown::Both);
    }

    /// Tell a worker no more work is coming and wait briefly for its
    /// `Bye`, answering any frames already in flight.
    fn drain_peer(&self, m: &mut Metered<'_>) -> Close {
        if m.send(&WireMsg::Drain).is_err() {
            return Close::Dead;
        }
        let start = Instant::now();
        while start.elapsed() < DRAIN_WAIT {
            match m.read_msg() {
                Ok(WireMsg::Bye) => return Close::Drained,
                Ok(WireMsg::Drain) => {
                    let _ = m.send(&WireMsg::Bye);
                    return Close::Drained;
                }
                // A claim crossed our drain on the wire: repeat it.
                Ok(WireMsg::Claim | WireMsg::ClaimN { .. }) => {
                    if m.send(&WireMsg::Drain).is_err() {
                        return Close::Drained;
                    }
                }
                // A late result is still a result.
                Ok(WireMsg::Result { index, sum, payload }) => {
                    let _ = self.accept_result(index as usize, sum, &payload);
                }
                Ok(_) => {}
                Err(FrameError::TimedOut) => {}
                Err(_) => return Close::Drained,
            }
        }
        Close::Drained
    }
}

/// The TCP sweep coordinator: spools the grid, listens on a socket, and
/// drives an elastic fleet of [`TcpWorker`]s to drain it. Results land in
/// the same durable spool as [`DistSweep`](crate::dist::DistSweep), so
/// every recovery invariant (checksums, atomic renames, resume) carries
/// over; the transport only changes how tasks and results travel.
#[derive(Debug)]
pub struct TcpSweep {
    spool: PathBuf,
    listen: String,
    threads: usize,
    engine_shards: usize,
    stall_timeout: Duration,
    seed: u64,
    resume: bool,
    claim_window: Option<usize>,
    auth_token: Option<String>,
}

impl TcpSweep {
    /// A coordinator spooling into `spool` and listening on `listen`
    /// (e.g. `"127.0.0.1:0"` — port 0 picks a free port, published in
    /// the spool's `addr` file).
    pub fn new(spool: impl Into<PathBuf>, listen: impl Into<String>) -> Self {
        Self {
            spool: spool.into(),
            listen: listen.into(),
            threads: 1,
            engine_shards: 1,
            stall_timeout: Duration::from_secs(30),
            seed: 0,
            resume: false,
            claim_window: None,
            auth_token: None,
        }
    }

    /// Threads for the coordinator's own local drain (the stall-recovery
    /// fallback).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Partitioned-engine shards per scenario for the local fallback.
    pub fn with_engine_shards(mut self, engine_shards: usize) -> Self {
        self.engine_shards = engine_shards.max(1);
        self
    }

    /// How long the fleet may go without producing a single result (and a
    /// single connection may go without a frame) before recovery kicks
    /// in.
    pub fn with_stall_timeout(mut self, stall: Duration) -> Self {
        self.stall_timeout = stall;
        self
    }

    /// Seed for the coordinator's polling-backoff jitter.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Resume a crashed coordinator's spool instead of demanding a fresh
    /// directory (validates the manifest against the grid and requeues
    /// orphans first).
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Pin every connection's claim window to `Some(n)` (clamped to
    /// `1..=`[`MAX_CLAIM_WINDOW`]; `Some(1)` is the v4 lock-step
    /// protocol), or `None` for the adaptive controller (the default).
    pub fn with_claim_window(mut self, window: Option<usize>) -> Self {
        self.claim_window = window.map(|n| n.clamp(1, MAX_CLAIM_WINDOW));
        self
    }

    /// Require workers to prove knowledge of this shared secret before
    /// any task is granted or result accepted. Mandatory when listening
    /// on a non-loopback interface.
    pub fn with_auth_token(mut self, token: impl Into<String>) -> Self {
        self.auth_token = Some(token.into());
        self
    }

    /// Run the sweep: spool (or resume), listen, serve workers until
    /// every task has a result, then merge. Returns the results in grid
    /// order plus the recovery counters.
    pub fn run(&self, grid: &[Scenario]) -> Result<(Vec<SweepResult>, TcpSummary), DistError> {
        let resumed_requeues = if self.resume {
            resume_spool(&self.spool, grid)?
        } else {
            spool_tasks(&self.spool, grid)?;
            0
        };
        let listener = TcpListener::bind(&self.listen)
            .map_err(|e| net_err(&self.listen, format!("bind failed: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| net_err(&self.listen, format!("no local addr: {e}")))?;
        if !local.ip().is_loopback() && self.auth_token.is_none() {
            return Err(net_err(
                &local.to_string(),
                "refusing to serve a non-loopback interface without --auth-token",
            ));
        }
        let addr = local.to_string();
        write_atomic(&self.spool, &self.spool.join("addr"), &addr)?;
        listener
            .set_nonblocking(true)
            .map_err(|e| net_err(&addr, format!("nonblocking accept unavailable: {e}")))?;

        let initial_results = count_results(&self.spool)?;
        let shared = CoordShared {
            spool: self.spool.clone(),
            names: crate::dist::read_manifest(&self.spool)?,
            source: SpoolSource::open(&self.spool),
            done: AtomicBool::new(false),
            stall: self.stall_timeout,
            fatal: Mutex::new(None),
            corrupt_seen: Mutex::new(HashSet::new()),
            journaled: AtomicUsize::new(0),
            done_results: AtomicUsize::new(initial_results),
            progress_lock: Mutex::new(()),
            progress: std::sync::Condvar::new(),
            corrupt_results: AtomicUsize::new(0),
            requeued: AtomicUsize::new(resumed_requeues),
            joined: AtomicUsize::new(0),
            left: AtomicUsize::new(0),
            dead: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            conn_seq: AtomicU64::new(0),
            claim_window: self.claim_window,
            auth_token: self.auth_token.clone(),
            reports: Mutex::new(Vec::new()),
        };
        let shared = &shared;
        let n_tasks = shared.names.len();
        let mut recoveries = 0u32;

        let served: Result<(), DistError> = crossbeam::thread::scope(|scope| {
            let mut poll =
                Backoff::new(Duration::from_millis(2), Duration::from_millis(40), self.seed);
            let mut last_count = initial_results;
            // The monitor only walks the results directory when a
            // handler journaled something since the last walk (or a
            // local drain may have, below) — an idle tick is an atomic
            // load, not a directory scan racing the handlers for disk.
            let mut seen_journaled = shared.journaled.load(Ordering::SeqCst);
            let mut force_scan = false;
            let mut idle_since = Instant::now();
            let outcome = loop {
                if let Some(e) = shared.fatal.lock().take() {
                    break Err(e);
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        scope.spawn(move |_| shared.handle(stream));
                        poll.reset();
                        continue;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    // Transient accept errors (e.g. aborted handshakes)
                    // are not fatal to the sweep.
                    Err(_) => {}
                }
                let journaled_now = shared.journaled.load(Ordering::SeqCst);
                let done_now = if force_scan || journaled_now != seen_journaled {
                    force_scan = false;
                    seen_journaled = journaled_now;
                    match count_results(&self.spool) {
                        Ok(n) => n,
                        Err(e) => break Err(e),
                    }
                } else {
                    last_count
                };
                if done_now >= n_tasks {
                    break Ok(());
                }
                if done_now > last_count {
                    last_count = done_now;
                    idle_since = Instant::now();
                    poll.reset();
                }
                if idle_since.elapsed() >= self.stall_timeout {
                    // The fleet went quiet for a whole stall window:
                    // steal everything back and drain locally, so the
                    // sweep terminates no matter what the workers do.
                    recoveries += 1;
                    match requeue_orphans(&self.spool) {
                        Ok(n) => {
                            shared.requeued.fetch_add(n, Ordering::SeqCst);
                        }
                        Err(e) => break Err(e),
                    }
                    if let Err(e) =
                        run_worker_sharded(&self.spool, self.threads, self.engine_shards)
                    {
                        break Err(e);
                    }
                    // The local drain wrote results the journaled
                    // counter never saw; the next tick must re-scan.
                    force_scan = true;
                    idle_since = Instant::now();
                    poll.reset();
                    if recoveries >= MAX_RECOVERIES {
                        // Let the merge report whatever is still missing.
                        break Ok(());
                    }
                    continue;
                }
                // Sleep on the progress condvar instead of blind: the
                // handler journaling the final result wakes the monitor
                // immediately, so completion is never stuck behind a
                // poll tick. The re-check under the lock closes the
                // lost-wakeup race (handlers flip `done` before locking
                // to notify). The backoff cap is clamped low enough
                // that a freshly dialing worker never waits long on
                // the non-blocking accept either.
                let guard = shared.progress_lock.lock();
                if !shared.done.load(Ordering::SeqCst) {
                    let waited = shared
                        .progress
                        .wait_timeout(guard, poll.next_delay().min(ACCEPT_POLL_CAP))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    drop(waited.0);
                } else {
                    drop(guard);
                }
            };
            shared.done.store(true, Ordering::SeqCst);
            // Closing the listener resets any un-accepted backlog
            // connections so late dialers fail fast instead of hanging.
            drop(listener);
            outcome
        })
        .expect("connection handler panicked");
        served?;

        // Merge, recovering from corrupt spool records the same way the
        // process transport does: discard + requeue once per task, drain
        // locally, retry.
        let results = loop {
            match merge_results(&self.spool) {
                Ok(results) => break results,
                Err(e @ (DistError::Corrupt { .. } | DistError::Codec { .. })) => {
                    let path = match &e {
                        DistError::Corrupt { path, .. } | DistError::Codec { path, .. } => path,
                        _ => unreachable!(),
                    };
                    let Some(index) = crate::dist::corrupt_result_index(&self.spool, path) else {
                        return Err(e);
                    };
                    if !shared.corrupt_seen.lock().insert(index) {
                        return Err(e);
                    }
                    crate::dist::discard_corrupt_result(&self.spool, index)?;
                    shared.corrupt_results.fetch_add(1, Ordering::SeqCst);
                    shared.requeued.fetch_add(1, Ordering::SeqCst);
                    run_worker_sharded(&self.spool, self.threads, self.engine_shards)?;
                }
                Err(DistError::Incomplete { .. }) if recoveries < MAX_RECOVERIES => {
                    // Workers that died at the very end may have left
                    // claims behind after the monitor loop exited.
                    recoveries += 1;
                    let n = requeue_orphans(&self.spool)?;
                    shared.requeued.fetch_add(n, Ordering::SeqCst);
                    run_worker_sharded(&self.spool, self.threads, self.engine_shards)?;
                }
                Err(e) => return Err(e),
            }
        };

        let summary = TcpSummary {
            corrupt_results: shared.corrupt_results.load(Ordering::SeqCst),
            requeued_tasks: shared.requeued.load(Ordering::SeqCst),
            workers_joined: shared.joined.load(Ordering::SeqCst),
            workers_left: shared.left.load(Ordering::SeqCst),
            dead_workers: shared.dead.load(Ordering::SeqCst),
            auth_rejects: shared.rejected.load(Ordering::SeqCst),
            recoveries,
            per_worker: std::mem::take(&mut *shared.reports.lock()),
        };
        Ok((results, summary))
    }
}

/// The coordinator's published address, once it has bound (the spool's
/// `addr` file) — how same-host tooling and tests discover a port-0
/// listener.
pub fn read_addr(spool: &Path) -> Option<String> {
    let text = std::fs::read_to_string(spool.join("addr")).ok()?;
    let addr = text.trim().to_string();
    (!addr.is_empty()).then_some(addr)
}

// ---- the worker ------------------------------------------------------------

/// How a [`TcpWorker`] run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerOutcome {
    /// The coordinator drained us (or `max_tasks` led to a graceful
    /// leave): every connection said goodbye cleanly.
    Drained {
        /// Tasks completed across all threads.
        completed: usize,
    },
    /// The fault plan killed the worker abruptly mid-sweep.
    Killed {
        /// Tasks completed before the kill.
        completed: usize,
    },
}

impl WorkerOutcome {
    /// Tasks completed, however the run ended.
    pub fn completed(&self) -> usize {
        match self {
            WorkerOutcome::Drained { completed } | WorkerOutcome::Killed { completed } => {
                *completed
            }
        }
    }
}

/// Why one worker connection ended.
enum ConnEnd {
    /// Coordinator drained us: stop for good.
    Drained,
    /// Fault plan kill: stop abruptly.
    Killed,
    /// Connection broke: redial and continue.
    Reconnect,
    /// The coordinator refused us (auth): stop with an error, redialing
    /// would only be rejected again.
    Rejected(String),
}

/// Counters shared across a worker's threads (and with the fault layer:
/// frame ordinals are global so a plan injures a fixed point in the
/// stream).
#[derive(Default)]
struct WorkerShared {
    killed: AtomicBool,
    frames: AtomicU64,
    results_sent: AtomicU64,
    tasks_done: AtomicU64,
    partition_fired: AtomicBool,
}

/// Outcome of one fault-filtered send.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Sent {
    Ok,
    Broken,
}

/// The write half of one worker connection, with the fault plan applied
/// to every outbound frame. Shared between the protocol loop and the
/// heartbeat ticker behind a mutex, so frames never interleave.
struct Conn<'a> {
    writer: Mutex<TcpStream>,
    plan: &'a FaultPlan,
    shared: &'a WorkerShared,
}

impl<'a> Conn<'a> {
    fn new(stream: &TcpStream, plan: &'a FaultPlan, shared: &'a WorkerShared) -> Option<Conn<'a>> {
        stream.try_clone().ok().map(|w| Conn { writer: Mutex::new(w), plan, shared })
    }

    fn send(&self, msg: &WireMsg) -> Sent {
        self.send_text(&encode_msg(msg))
    }

    /// Send an already-encoded frame body. The hot path — `Result`
    /// frames whose payload text the worker also checksums — encodes
    /// once and comes through here; every fault-plan decision operates
    /// on the final body text either way.
    fn send_text(&self, body: &str) -> Sent {
        let mut writer = self.writer.lock();
        let n = self.shared.frames.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some((k, ms)) = self.plan.delay_every {
            if n.is_multiple_of(k) {
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
        if self.plan.drop_frame == Some(n) {
            // Pretend the frame went out; the peer never sees it.
            return Sent::Ok;
        }
        if self.plan.truncate_frame == Some(n) {
            let len = (body.len() as u32).to_be_bytes();
            let half = &body.as_bytes()[..body.len() / 2];
            let _ = std::io::Write::write_all(&mut *writer, &len);
            let _ = std::io::Write::write_all(&mut *writer, half);
            let _ = std::io::Write::flush(&mut *writer);
            let _ = writer.shutdown(Shutdown::Both);
            return Sent::Broken;
        }
        if let Some(p) = self.plan.partition_after {
            if n > p && !self.shared.partition_fired.swap(true, Ordering::SeqCst) {
                let _ = writer.shutdown(Shutdown::Both);
                return Sent::Broken;
            }
        }
        match write_frame_text(&mut *writer, body) {
            Ok(()) => Sent::Ok,
            Err(_) => Sent::Broken,
        }
    }

    fn abrupt_close(&self) {
        let _ = self.writer.lock().shutdown(Shutdown::Both);
    }
}

/// A TCP sweep worker: dials the coordinator, claims tasks one at a time
/// per thread, and streams results back. Reconnects through seeded
/// backoff when the connection breaks; leaves gracefully (`Drain`/`Bye`)
/// when the coordinator drains it or `max_tasks` is reached.
#[derive(Debug)]
pub struct TcpWorker {
    addr: String,
    name: String,
    threads: usize,
    engine_shards: usize,
    seed: u64,
    heartbeat: Duration,
    patience: Duration,
    dial_attempts: u32,
    max_tasks: Option<u64>,
    fault: FaultPlan,
    claim_window: Option<usize>,
    auth_token: Option<String>,
}

impl TcpWorker {
    /// A worker dialing `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            name: format!("pid-{}", std::process::id()),
            threads: 1,
            engine_shards: 1,
            seed: 0,
            heartbeat: Duration::from_millis(500),
            patience: Duration::from_secs(30),
            dial_attempts: 40,
            max_tasks: None,
            fault: FaultPlan::default(),
            claim_window: None,
            auth_token: None,
        }
    }

    /// Display name the coordinator sees in `Hello` frames.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Concurrent connections (one task in flight per thread).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Partitioned-engine shards per scenario.
    pub fn with_engine_shards(mut self, engine_shards: usize) -> Self {
        self.engine_shards = engine_shards.max(1);
        self
    }

    /// Seed for the dial/claim backoff jitter (and anything else this
    /// worker randomizes).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Heartbeat interval (also the read-poll granularity).
    pub fn with_heartbeat(mut self, heartbeat: Duration) -> Self {
        self.heartbeat = heartbeat.max(Duration::from_millis(1));
        self
    }

    /// How long to wait for a claim's reply before giving up on the
    /// connection and redialing.
    pub fn with_patience(mut self, patience: Duration) -> Self {
        self.patience = patience.max(Duration::from_millis(1));
        self
    }

    /// Consecutive failed dials before the worker gives up entirely.
    pub fn with_dial_attempts(mut self, attempts: u32) -> Self {
        self.dial_attempts = attempts.max(1);
        self
    }

    /// Leave gracefully (send `Drain`) after completing this many tasks
    /// across all threads — the elastic scale-down path.
    pub fn with_max_tasks(mut self, max_tasks: u64) -> Self {
        self.max_tasks = Some(max_tasks);
        self
    }

    /// Inject this fault schedule into the worker's outbound frames.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Cap the local task queue at `Some(n)` (clamped to
    /// `1..=`[`MAX_CLAIM_WINDOW`]), or `None` for the default. The
    /// coordinator's window still governs how much is actually granted.
    pub fn with_claim_window(mut self, window: Option<usize>) -> Self {
        self.claim_window = window.map(|n| n.clamp(1, MAX_CLAIM_WINDOW));
        self
    }

    /// Shared secret for the coordinator's auth challenge.
    pub fn with_auth_token(mut self, token: impl Into<String>) -> Self {
        self.auth_token = Some(token.into());
        self
    }

    /// Run until drained, killed by the fault plan, or unable to reach
    /// the coordinator.
    pub fn run(&self) -> Result<WorkerOutcome, DistError> {
        let shared = WorkerShared::default();
        let shared = &shared;
        let outcomes: Vec<Result<(ConnEnd, usize), DistError>> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.threads)
                    .map(|t| scope.spawn(move |_| self.worker_thread(t, shared)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
            })
            .expect("worker scope failed");
        let mut completed = 0;
        let mut killed = false;
        let mut first_err = None;
        for outcome in outcomes {
            match outcome {
                Ok((ConnEnd::Killed, n)) => {
                    killed = true;
                    completed += n;
                }
                Ok((_, n)) => completed += n,
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if killed {
            Ok(WorkerOutcome::Killed { completed })
        } else if let Some(e) = first_err {
            Err(e)
        } else {
            Ok(WorkerOutcome::Drained { completed })
        }
    }

    /// One thread: dial, drive the connection, redial on breakage.
    fn worker_thread(
        &self,
        t: usize,
        shared: &WorkerShared,
    ) -> Result<(ConnEnd, usize), DistError> {
        let runner = SweepRunner::new().with_workers(1).with_engine_shards(self.engine_shards);
        let thread_seed = self.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut dial = Backoff::new(Duration::from_millis(20), Duration::from_secs(2), thread_seed);
        let mut completed = 0usize;
        loop {
            if shared.killed.load(Ordering::SeqCst) {
                return Ok((ConnEnd::Killed, completed));
            }
            let stream = match TcpStream::connect(&self.addr) {
                Ok(s) => s,
                Err(e) => {
                    if dial.attempt() >= self.dial_attempts {
                        return Err(net_err(
                            &self.addr,
                            format!("gave up dialing after {} attempts: {e}", dial.attempt()),
                        ));
                    }
                    dial.sleep();
                    continue;
                }
            };
            dial.reset();
            let _ = stream.set_nodelay(true);
            // Poll reads finely regardless of the heartbeat cadence, so
            // patience/drain windows are honored promptly.
            let poll = self.heartbeat.min(Duration::from_millis(50));
            if stream.set_read_timeout(Some(poll)).is_err() {
                dial.sleep();
                continue;
            }
            let Some(conn) = Conn::new(&stream, &self.fault, shared) else {
                dial.sleep();
                continue;
            };
            match self.drive_connection(t, &stream, &conn, &runner, shared, &mut completed) {
                ConnEnd::Drained => return Ok((ConnEnd::Drained, completed)),
                ConnEnd::Killed => {
                    conn.abrupt_close();
                    return Ok((ConnEnd::Killed, completed));
                }
                ConnEnd::Reconnect => {
                    let _ = stream.shutdown(Shutdown::Both);
                }
                ConnEnd::Rejected(reason) => {
                    let _ = stream.shutdown(Shutdown::Both);
                    return Err(net_err(&self.addr, reason));
                }
            }
        }
    }

    /// Introduce ourselves, start the heartbeat ticker, and run the
    /// claim/compute/result loop until the connection ends.
    fn drive_connection(
        &self,
        t: usize,
        stream: &TcpStream,
        conn: &Conn<'_>,
        runner: &SweepRunner,
        shared: &WorkerShared,
        completed: &mut usize,
    ) -> ConnEnd {
        let hello = WireMsg::Hello {
            worker: format!("{}/t{t}", self.name),
            threads: self.threads as u64,
            engine_shards: self.engine_shards as u64,
        };
        if conn.send(&hello) == Sent::Broken {
            return ConnEnd::Reconnect;
        }
        // -1 encodes "nothing in flight" (task indices are small).
        let inflight = AtomicI64::new(-1);
        let stop = AtomicBool::new(false);
        // The ticker sleeps on a condvar, not in sliced naps: the
        // protocol loop's notify ends it the instant the connection
        // does, so a drained worker's exit never trails by a nap slice.
        let stop_lock = Mutex::new(());
        let stop_cv = std::sync::Condvar::new();
        crossbeam::thread::scope(|scope| {
            scope.spawn(|_| {
                let interrupted =
                    || stop.load(Ordering::SeqCst) || shared.killed.load(Ordering::SeqCst);
                loop {
                    let guard = stop_lock.lock();
                    let waited = stop_cv
                        .wait_timeout(guard, self.heartbeat)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    drop(waited.0);
                    if interrupted() {
                        break;
                    }
                    let cur = inflight.load(Ordering::SeqCst);
                    let beat = WireMsg::Heartbeat { inflight: u64::try_from(cur).ok() };
                    if conn.send(&beat) == Sent::Broken {
                        break;
                    }
                }
            });
            let end = self.protocol_loop(stream, conn, runner, shared, &inflight, completed);
            stop.store(true, Ordering::SeqCst);
            drop(stop_lock.lock());
            stop_cv.notify_all();
            end
        })
        .expect("heartbeat ticker panicked")
    }

    /// The pipelined claim/compute/result loop. A local queue of granted
    /// tasks decouples claiming from computing: the next `ClaimN` goes
    /// out *before* the head of the queue is computed, so the refill
    /// rides back over the wire while this thread is busy, and the queue
    /// only drains when the coordinator has nothing to grant. Every
    /// `ClaimN` carries the queue's indices as `holding` — the
    /// coordinator's loss detector needs to know what we still owe it.
    #[allow(clippy::too_many_lines)]
    fn protocol_loop(
        &self,
        stream: &TcpStream,
        conn: &Conn<'_>,
        runner: &SweepRunner,
        shared: &WorkerShared,
        inflight: &AtomicI64,
        completed: &mut usize,
    ) -> ConnEnd {
        let mut claim_pause =
            Backoff::new(Duration::from_millis(25), Duration::from_millis(250), self.seed ^ 0x5EED);
        let capacity = self.claim_window.unwrap_or(32).clamp(1, MAX_CLAIM_WINDOW);
        let mut queue: VecDeque<(u64, Scenario)> = VecDeque::new();
        let mut claim_inflight = false;
        loop {
            if shared.killed.load(Ordering::SeqCst) {
                return ConnEnd::Killed;
            }
            if self.max_tasks.is_some_and(|m| shared.tasks_done.load(Ordering::SeqCst) >= m) {
                // Graceful scale-down: announce the leave and wait for
                // the goodbye. Anything still queued is abandoned — the
                // coordinator requeues the window when the socket dies.
                let _ = conn.send(&WireMsg::Drain);
                self.await_bye(stream);
                return ConnEnd::Drained;
            }
            // Keep exactly one claim in flight, re-claiming once the
            // queue is half-drained (earlier would thrash the window
            // accounting, later would let the pipe run dry).
            if !claim_inflight && queue.len() <= capacity / 2 {
                let claim = WireMsg::ClaimN {
                    max: (capacity - queue.len()) as u64,
                    holding: queue.iter().map(|(i, _)| *i).collect(),
                };
                if conn.send(&claim) == Sent::Broken {
                    return ConnEnd::Reconnect;
                }
                claim_inflight = true;
            }
            if let Some((index, sc)) = queue.pop_front() {
                inflight.store(index as i64, Ordering::SeqCst);
                let result = runner.run_scenario(&sc);
                inflight.store(-1, Ordering::SeqCst);
                if shared.killed.load(Ordering::SeqCst) {
                    return ConnEnd::Killed;
                }
                // One serialization serves the checksum and the frame:
                // the payload text goes straight into a spliced Result
                // body (`encode_result_msg` is pinned byte-identical to
                // the structured encoder) instead of being re-written
                // from the `Json` tree by a generic `send`.
                let text = sweep_result_to_json(&result).write();
                let mut sum = fnv1a(text.as_bytes());
                let nth_result = shared.results_sent.fetch_add(1, Ordering::SeqCst) + 1;
                if self.fault.corrupt_result == Some(nth_result) {
                    sum ^= 0xBAD_F00D;
                }
                let sent = conn.send_text(&encode_result_msg(index, sum, &text));
                *completed += 1;
                let total = shared.tasks_done.fetch_add(1, Ordering::SeqCst) + 1;
                if self.fault.kill_after_tasks == Some(total) {
                    shared.killed.store(true, Ordering::SeqCst);
                    return ConnEnd::Killed;
                }
                if sent == Sent::Broken {
                    return ConnEnd::Reconnect;
                }
                claim_pause.reset();
                continue;
            }
            // Queue empty: block on the claim's reply (one is always in
            // flight by the time we get here).
            let reply = match self.await_reply(stream, shared) {
                Ok(msg) => msg,
                Err(end) => return end,
            };
            match reply {
                WireMsg::TaskBatch { tasks } => {
                    claim_inflight = false;
                    if tasks.is_empty() {
                        // "Nothing to grant right now": back off, then
                        // re-claim.
                        claim_pause.sleep();
                        continue;
                    }
                    for (index, scenario) in tasks {
                        let Ok(sc) = scenario_from_json(&scenario) else {
                            // An undecodable task is a protocol failure;
                            // break the connection so the coordinator
                            // requeues the window.
                            return ConnEnd::Reconnect;
                        };
                        queue.push_back((index, sc));
                    }
                }
                // A lock-step (v4) coordinator answers with single
                // tasks; the pipeline degenerates gracefully.
                WireMsg::Task { index, scenario } => {
                    claim_inflight = false;
                    let Ok(sc) = scenario_from_json(&scenario) else {
                        return ConnEnd::Reconnect;
                    };
                    queue.push_back((index, sc));
                }
                // "Alive, nothing to grant yet": the claim stays parked
                // on the coordinator and a `TaskBatch`/`Drain` answer is
                // still coming — keep waiting, no backoff burned.
                WireMsg::Heartbeat { .. } => {}
                WireMsg::AuthChallenge { nonce } => match &self.auth_token {
                    // The claim reply is still coming; answer the
                    // challenge and keep waiting.
                    Some(token) => {
                        let proof = WireMsg::AuthProof { mac: auth::proof(token, nonce) };
                        if conn.send(&proof) == Sent::Broken {
                            return ConnEnd::Reconnect;
                        }
                    }
                    None => {
                        let _ = conn.send(&WireMsg::Bye);
                        return ConnEnd::Rejected(
                            "coordinator requires an auth token (--auth-token)".to_string(),
                        );
                    }
                },
                WireMsg::Reject { reason } => return ConnEnd::Rejected(reason),
                WireMsg::Drain => {
                    let _ = conn.send(&WireMsg::Bye);
                    return ConnEnd::Drained;
                }
                WireMsg::Bye => return ConnEnd::Drained,
                _ => return ConnEnd::Reconnect,
            }
        }
    }

    /// Wait for the coordinator's answer to a claim, up to `patience`.
    fn await_reply(&self, stream: &TcpStream, shared: &WorkerShared) -> Result<WireMsg, ConnEnd> {
        let start = Instant::now();
        loop {
            if shared.killed.load(Ordering::SeqCst) {
                return Err(ConnEnd::Killed);
            }
            match read_frame(&mut (&*stream)) {
                Ok(msg) => return Ok(msg),
                Err(FrameError::TimedOut) => {
                    if start.elapsed() > self.patience {
                        return Err(ConnEnd::Reconnect);
                    }
                }
                Err(_) => return Err(ConnEnd::Reconnect),
            }
        }
    }

    /// Wait briefly for `Bye` after announcing our own drain.
    fn await_bye(&self, stream: &TcpStream) {
        let start = Instant::now();
        while start.elapsed() < self.patience.min(DRAIN_WAIT) {
            match read_frame(&mut (&*stream)) {
                Ok(WireMsg::Bye) | Err(FrameError::Closed) => return,
                Ok(_) | Err(FrameError::TimedOut) => {}
                Err(_) => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::spool_tasks;
    use simcal_sim::ScenarioRegistry;

    fn grid(n: usize) -> Vec<Scenario> {
        ScenarioRegistry::reduced().scenarios().into_iter().take(n).collect()
    }

    fn fresh_spool(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simcal-net-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn fingerprints(rs: &[SweepResult]) -> Vec<(String, Vec<u64>, u64, u64)> {
        rs.iter().map(SweepResult::fingerprint).collect()
    }

    fn local(grid: &[Scenario]) -> Vec<SweepResult> {
        SweepRunner::new().with_workers(2).run(grid)
    }

    /// A coordinator on a fresh port with test-scale timeouts.
    fn coordinator(spool: &Path) -> TcpSweep {
        TcpSweep::new(spool, "127.0.0.1:0")
            .with_stall_timeout(Duration::from_millis(1500))
            .with_seed(7)
    }

    /// A worker with test-scale timeouts (fast heartbeats, short
    /// patience so dropped-reply recovery doesn't dominate the test).
    fn fast_worker(addr: String, seed: u64) -> TcpWorker {
        TcpWorker::new(addr)
            .with_heartbeat(Duration::from_millis(25))
            .with_patience(Duration::from_millis(600))
            .with_seed(seed)
    }

    fn wait_addr(spool: &Path) -> String {
        let start = Instant::now();
        loop {
            if let Some(addr) = read_addr(spool) {
                return addr;
            }
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "coordinator never published an address"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    type WorkerBuilder = Box<dyn FnOnce(String) -> TcpWorker + Send>;

    fn worker(f: impl FnOnce(String) -> TcpWorker + Send + 'static) -> WorkerBuilder {
        Box::new(f)
    }

    type TcpRun =
        (Result<(Vec<SweepResult>, TcpSummary), DistError>, Vec<Result<WorkerOutcome, DistError>>);

    /// Run a coordinator and a fleet of workers (each built once the
    /// listen address is published) to completion.
    fn run_tcp(
        spool: &Path,
        grid: &[Scenario],
        coord: TcpSweep,
        fleet: Vec<WorkerBuilder>,
    ) -> TcpRun {
        crossbeam::thread::scope(|scope| {
            let coord = scope.spawn(|_| coord.run(grid));
            let addr = wait_addr(spool);
            let handles: Vec<_> = fleet
                .into_iter()
                .map(|build| {
                    let addr = addr.clone();
                    scope.spawn(move |_| build(addr).run())
                })
                .collect();
            let outcomes = handles.into_iter().map(|h| h.join().expect("worker")).collect();
            (coord.join().expect("coordinator"), outcomes)
        })
        .expect("tcp test scope")
    }

    #[test]
    fn tcp_sweep_matches_the_local_runner() {
        let grid = grid(4);
        let spool = fresh_spool("basic");
        let (coord, outcomes) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool),
            vec![worker(|a| fast_worker(a, 1)), worker(|a| fast_worker(a, 2).with_threads(2))],
        );
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert!(summary.is_clean(), "clean run fired a recovery path: {summary}");
        assert_eq!(summary.workers_joined, 3, "two workers, three connections");
        let drained: usize = outcomes.iter().map(|o| o.as_ref().unwrap().completed()).sum();
        assert_eq!(drained, grid.len(), "every task completed over TCP, none locally");
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn killed_worker_loses_nothing() {
        let grid = grid(4);
        let spool = fresh_spool("kill");
        let plan = FaultPlan { kill_after_tasks: Some(1), ..FaultPlan::default() };
        let (coord, outcomes) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool),
            vec![
                worker(move |a| fast_worker(a, 3).with_fault(plan)),
                worker(|a| fast_worker(a, 4)),
            ],
        );
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert_eq!(outcomes[0].as_ref().unwrap(), &WorkerOutcome::Killed { completed: 1 });
        assert_eq!(outcomes[1].as_ref().unwrap().completed(), grid.len() - 1);
        assert!(summary.dead_workers >= 1, "the kill went unnoticed: {summary}");
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn dropped_result_frame_is_requeued_on_the_next_claim() {
        let grid = grid(3);
        let spool = fresh_spool("drop");
        // Long heartbeat so the frame ordinals are deterministic:
        // Hello(1), ClaimN(2), ClaimN(3), Result(4) — the pipelined
        // worker re-claims before computing, and the first result
        // vanishes.
        let plan = FaultPlan { drop_frame: Some(4), ..FaultPlan::default() };
        let (coord, outcomes) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool),
            vec![worker(move |a| {
                fast_worker(a, 5).with_heartbeat(Duration::from_secs(5)).with_fault(plan)
            })],
        );
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert!(summary.requeued_tasks >= 1, "dropped result was not requeued: {summary}");
        assert!(outcomes[0].is_ok());
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn truncated_frame_breaks_the_connection_not_the_sweep() {
        let grid = grid(3);
        let spool = fresh_spool("trunc");
        let plan = FaultPlan { truncate_frame: Some(3), ..FaultPlan::default() };
        let (coord, _) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool),
            vec![worker(move |a| {
                fast_worker(a, 6).with_heartbeat(Duration::from_secs(5)).with_fault(plan)
            })],
        );
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert!(
            summary.requeued_tasks >= 1 || summary.dead_workers >= 1,
            "truncation left no trace: {summary}"
        );
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn partition_heals_by_redialing() {
        let grid = grid(3);
        let spool = fresh_spool("part");
        let plan = FaultPlan { partition_after: Some(2), ..FaultPlan::default() };
        let (coord, outcomes) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool),
            vec![worker(move |a| fast_worker(a, 8).with_fault(plan))],
        );
        let (results, _) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        // The partitioned result is recomputed, so the worker may count
        // more completions than there are tasks.
        assert!(outcomes[0].as_ref().unwrap().completed() >= grid.len());
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn corrupt_result_frame_is_requeued_once_and_counted() {
        let grid = grid(3);
        let spool = fresh_spool("corrupt-frame");
        let plan = FaultPlan { corrupt_result: Some(1), ..FaultPlan::default() };
        let (coord, _) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool),
            vec![worker(move |a| fast_worker(a, 9).with_fault(plan))],
        );
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert_eq!(summary.corrupt_results, 1);
        assert!(summary.requeued_tasks >= 1);
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn slow_worker_is_not_mistaken_for_a_dead_one() {
        let grid = grid(3);
        let spool = fresh_spool("slow");
        let plan = FaultPlan { delay_every: Some((2, 30)), ..FaultPlan::default() };
        let (coord, outcomes) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool),
            vec![worker(move |a| fast_worker(a, 10).with_fault(plan))],
        );
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert_eq!(summary.dead_workers, 0, "slow worker misdeclared dead: {summary}");
        assert_eq!(outcomes[0].as_ref().unwrap().completed(), grid.len());
        std::fs::remove_dir_all(&spool).ok();
    }

    /// The chaos oracle: every seeded fault schedule terminates within
    /// the stall window and merges bit-identically to a local run.
    #[test]
    fn seeded_fault_schedules_all_converge_bit_identically() {
        let grid = grid(3);
        let expected = fingerprints(&local(&grid));
        for seed in 0..6u64 {
            let plan = FaultPlan::seeded(seed);
            let spool = fresh_spool(&format!("chaos-{seed}"));
            let (coord, _) = run_tcp(
                &spool,
                &grid,
                coordinator(&spool).with_seed(seed),
                vec![
                    worker(move |a| fast_worker(a, seed).with_fault(plan)),
                    worker(move |a| fast_worker(a, seed ^ 0xFFFF)),
                ],
            );
            let (results, summary) =
                coord.unwrap_or_else(|e| panic!("chaos seed {seed} failed: {e}"));
            assert_eq!(
                fingerprints(&results),
                expected,
                "chaos seed {seed} ({}) diverged: {summary}",
                FaultPlan::seeded(seed)
            );
            std::fs::remove_dir_all(&spool).ok();
        }
    }

    #[test]
    fn worker_leaves_gracefully_after_max_tasks() {
        let grid = grid(3);
        let spool = fresh_spool("leave");
        let (coord, outcomes) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool),
            vec![worker(|a| fast_worker(a, 11).with_max_tasks(1)), worker(|a| fast_worker(a, 12))],
        );
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert_eq!(outcomes[0].as_ref().unwrap(), &WorkerOutcome::Drained { completed: 1 });
        assert!(summary.workers_left >= 2);
        assert_eq!(summary.dead_workers, 0, "graceful leave counted as death: {summary}");
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn elastic_worker_joins_mid_sweep() {
        let grid = grid(4);
        let spool = fresh_spool("elastic");
        // The early worker drags every frame out, so the sweep is still
        // running when the second worker dials in.
        let slow = FaultPlan { delay_every: Some((1, 60)), ..FaultPlan::default() };
        let (coord, outcomes) = crossbeam::thread::scope(|scope| {
            let coord = scope.spawn(|_| coordinator(&spool).run(&grid));
            let addr = wait_addr(&spool);
            let early = {
                let addr = addr.clone();
                scope.spawn(move |_| fast_worker(addr, 13).with_fault(slow).run())
            };
            let late = scope.spawn(move |_| {
                std::thread::sleep(Duration::from_millis(100));
                fast_worker(addr, 14).run()
            });
            let outcomes = vec![early.join().expect("early"), late.join().expect("late")];
            (coord.join().expect("coordinator"), outcomes)
        })
        .expect("tcp test scope");
        let (results, _) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        for o in &outcomes {
            assert!(o.is_ok(), "worker failed: {o:?}");
        }
        let late_share = outcomes[1].as_ref().unwrap().completed();
        assert!(late_share >= 1, "the late joiner never got a task");
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn no_workers_at_all_falls_back_to_a_local_drain() {
        let grid = grid(3);
        let spool = fresh_spool("fallback");
        let (results, summary) = TcpSweep::new(&spool, "127.0.0.1:0")
            .with_stall_timeout(Duration::from_millis(200))
            .with_threads(2)
            .run(&grid)
            .unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert!(summary.recoveries >= 1, "local fallback never fired: {summary}");
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn tcp_resume_continues_a_crashed_coordinators_spool() {
        let grid = grid(3);
        let spool = fresh_spool("resume");
        // A "crashed" coordinator: tasks spooled, one claimed but never
        // finished.
        spool_tasks(&spool, &grid).unwrap();
        let source = SpoolSource::open(&spool);
        source.try_claim().unwrap().expect("a task to orphan");
        drop(source);
        let (coord, outcomes) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool).with_resume(true),
            vec![worker(|a| fast_worker(a, 15))],
        );
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert!(summary.requeued_tasks >= 1, "orphaned claim not requeued: {summary}");
        assert!(outcomes[0].is_ok());
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn mid_window_result_loss_is_detected_by_the_holding_list() {
        let grid = grid(6);
        let spool = fresh_spool("midwin");
        // Fixed window 4 on both ends makes the ordinals deterministic:
        // Hello(1), ClaimN(2) → TaskBatch[t0..t3], Result(3), Result(4)
        // — the second result vanishes mid-window — then ClaimN(5)
        // holds only [t2,t3], proving the loss while the socket stays
        // healthy.
        let plan = FaultPlan { drop_frame: Some(4), ..FaultPlan::default() };
        let (coord, outcomes) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool).with_claim_window(Some(4)),
            vec![worker(move |a| {
                fast_worker(a, 21)
                    .with_claim_window(Some(4))
                    .with_heartbeat(Duration::from_secs(5))
                    .with_fault(plan)
            })],
        );
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert!(summary.requeued_tasks >= 1, "mid-window loss not requeued: {summary}");
        assert_eq!(
            summary.dead_workers, 0,
            "holding-based recovery should not kill the connection: {summary}"
        );
        assert!(outcomes[0].is_ok());
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn authed_fleet_drains_cleanly() {
        let grid = grid(4);
        let spool = fresh_spool("auth-ok");
        let (coord, outcomes) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool).with_auth_token("sesame"),
            vec![
                worker(|a| fast_worker(a, 31).with_auth_token("sesame")),
                worker(|a| fast_worker(a, 32).with_auth_token("sesame")),
            ],
        );
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert!(summary.is_clean(), "authed run fired a recovery path: {summary}");
        for o in &outcomes {
            assert!(o.is_ok(), "authed worker failed: {o:?}");
        }
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn wrong_or_missing_tokens_are_rejected() {
        let grid = grid(2);
        let spool = fresh_spool("auth-bad");
        let (coord, outcomes) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool).with_auth_token("sesame"),
            vec![
                worker(|a| {
                    fast_worker(a, 33)
                        .with_auth_token("not-sesame")
                        .with_patience(Duration::from_millis(300))
                        .with_dial_attempts(2)
                }),
                worker(|a| fast_worker(a, 34).with_dial_attempts(2)),
            ],
        );
        // The sweep still finishes — the stall fallback drains locally
        // once the strangers are turned away.
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert!(summary.auth_rejects >= 1, "bad token went uncounted: {summary}");
        // The rejected worker usually errs out on the Reject frame, but
        // if its redial crosses the sweep's end it is drained like any
        // other stranger — either way it must never be granted a task.
        match &outcomes[0] {
            Err(_) => {}
            Ok(outcome) => {
                assert_eq!(outcome.completed(), 0, "wrong token was granted a task");
            }
        }
        let tokenless = outcomes[1].as_ref().expect_err("missing token was accepted");
        assert!(tokenless.to_string().contains("auth token"), "unhelpful rejection: {tokenless}");
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn non_loopback_listen_without_a_token_is_refused() {
        let grid = grid(1);
        let spool = fresh_spool("nonloop");
        let err = TcpSweep::new(&spool, "0.0.0.0:0").run(&grid).unwrap_err();
        assert!(err.to_string().contains("auth-token"), "wrong refusal: {err}");
        std::fs::remove_dir_all(&spool).ok();
        // With a token the same bind is allowed (no workers dial in, so
        // the stall fallback drains it).
        let spool = fresh_spool("nonloop-ok");
        let (results, _) = TcpSweep::new(&spool, "0.0.0.0:0")
            .with_auth_token("sesame")
            .with_stall_timeout(Duration::from_millis(200))
            .run(&grid)
            .unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn summary_reports_per_worker_transport_counters() {
        let grid = grid(4);
        let spool = fresh_spool("reports");
        let (coord, _) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool),
            vec![worker(|a| fast_worker(a, 23).with_name("obs").with_engine_shards(2))],
        );
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert_eq!(summary.per_worker.len(), 1, "one connection, one report");
        let r = &summary.per_worker[0];
        assert_eq!(r.name, "obs/t0");
        assert_eq!(r.threads, 1);
        assert_eq!(r.engine_shards, 2);
        assert_eq!(r.tasks, grid.len());
        assert!(r.frames_in > 0 && r.frames_out > 0, "frame counters never moved: {r}");
        assert!(r.bytes_in > 0 && r.bytes_out > 0, "byte counters never moved: {r}");
        assert!(r.final_window >= 1);
        assert!(r.mean_rtt_us.is_some(), "no RTT probe landed: {r}");
        let line = r.to_string();
        assert!(line.contains("obs/t0") && line.contains("tasks=4"), "report line: {line}");
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn a_v4_lock_step_worker_interops_with_the_v5_coordinator() {
        let grid = grid(3);
        let spool = fresh_spool("v4-interop");
        // A hand-rolled worker speaking the exact v4 wire text: single
        // `claim`s, no capability fields, no `holding` lists.
        let send_v4 = |stream: &TcpStream, text: &str| {
            use std::io::Write;
            let mut w = stream;
            w.write_all(&(text.len() as u32).to_be_bytes()).unwrap();
            w.write_all(text.as_bytes()).unwrap();
            w.flush().unwrap();
        };
        let (coord, served) = crossbeam::thread::scope(|scope| {
            let coord = scope.spawn(|_| coordinator(&spool).run(&grid));
            let addr = wait_addr(&spool);
            let runner = SweepRunner::new().with_workers(1);
            let stream = TcpStream::connect(&addr).unwrap();
            stream.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
            send_v4(&stream, r#"{"v":4,"type":"hello","worker":"legacy"}"#);
            let mut served = 0usize;
            loop {
                send_v4(&stream, r#"{"v":4,"type":"claim"}"#);
                let reply = loop {
                    match read_frame(&mut (&stream)) {
                        Ok(msg) => break msg,
                        Err(FrameError::TimedOut) => {}
                        Err(e) => panic!("v4 worker read failed: {e}"),
                    }
                };
                match reply {
                    WireMsg::Task { index, scenario } => {
                        let sc = scenario_from_json(&scenario).unwrap();
                        let text = sweep_result_to_json(&runner.run_scenario(&sc)).write();
                        let sum = fnv1a(text.as_bytes());
                        send_v4(
                            &stream,
                            &format!(
                                r#"{{"v":4,"type":"result","index":"{index}","sum":"{sum}","payload":{text}}}"#
                            ),
                        );
                        served += 1;
                    }
                    WireMsg::Heartbeat { .. } => std::thread::sleep(Duration::from_millis(5)),
                    WireMsg::Drain => {
                        send_v4(&stream, r#"{"v":4,"type":"bye"}"#);
                        break;
                    }
                    WireMsg::Bye => break,
                    other => panic!("unexpected reply to a v4 claim: {other:?}"),
                }
            }
            (coord.join().expect("coordinator"), served)
        })
        .expect("tcp test scope");
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert_eq!(served, grid.len(), "the v4 worker did not drain the sweep");
        assert_eq!(summary.dead_workers, 0, "v4 interop broke the connection: {summary}");
        assert!(summary.is_clean(), "v4 interop fired a recovery path: {summary}");
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn fault_plan_specs_round_trip() {
        let plan = FaultPlan {
            kill_after_tasks: Some(2),
            drop_frame: Some(5),
            truncate_frame: None,
            partition_after: Some(4),
            delay_every: Some((3, 50)),
            corrupt_result: Some(1),
        };
        let spec = plan.spec();
        assert_eq!(FaultPlan::parse(&spec).unwrap(), plan);
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("seed=3").unwrap(), FaultPlan::seeded(3));
        assert!(!FaultPlan::seeded(3).is_empty(), "a seeded plan always injects something");
        assert!(FaultPlan::parse("kill-after=0").is_err(), "ordinals are 1-based");
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("kill-after").is_err());
        assert!(FaultPlan::parse("delay-every=3").is_err());
        assert!(FaultPlan::parse("seed=1,kill-after=2").is_err());
    }
}
