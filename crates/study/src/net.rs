//! TCP transport for the spooled distributed sweep: an elastic worker
//! fleet over sockets, with heartbeats and deterministic fault injection.
//!
//! The spool protocol in [`crate::dist`] shares work through a
//! filesystem; this module adds the transport the paper's WAN-scale
//! deployments need: the coordinator ([`TcpSweep`]) listens on a socket,
//! workers ([`TcpWorker`]) dial in from anywhere, and tasks, results, and
//! heartbeats flow as length-prefixed [`simcal_sim::codec`] frames
//! ([`WireMsg`]). The spool stays underneath as the durable journal —
//! every accepted result is written through [`dist`]'s checksummed,
//! atomically-renamed result files, so a crashed coordinator resumes with
//! [`TcpSweep::with_resume`] exactly like the filesystem transport does.
//!
//! ## Protocol
//!
//! Each connection is lock-step: the worker sends `Hello` once, then
//! loops `Claim` → (`Task` | `Heartbeat` | `Drain`). A `Task` reply hands
//! out one scenario; the worker computes it, answers with `Result`, and
//! claims again. A `Heartbeat{inflight: None}` reply means "the queue is
//! empty but claimed tasks are still in flight elsewhere — back off and
//! re-claim" (the task may yet be requeued). `Drain` means "no work will
//! ever come; goodbye", answered with `Bye`. A background ticker on each
//! worker connection sends `Heartbeat` frames at a fixed interval so the
//! coordinator can tell slow from dead.
//!
//! ## Failure handling
//!
//! The coordinator requeues a connection's in-flight task whenever the
//! connection dies, the worker re-claims without delivering a result
//! (a dropped `Result` frame — safe to detect this way because frames on
//! one socket are ordered), or no frame arrives for the stall timeout
//! (the same `--stall-timeout` knob the process transport uses). Corrupt
//! `Result` frames (bad checksum, undecodable payload, name mismatch)
//! are counted, requeued once, and cut the connection on a repeat. If the
//! whole fleet goes quiet for a stall window the coordinator requeues all
//! orphans and drains the spool locally, so the sweep terminates within
//! one stall window of the last external progress no matter what the
//! workers do. Workers reconnect through the shared seeded
//! [`Backoff`](crate::backoff::Backoff) dialer.
//!
//! ## Fault injection
//!
//! [`FaultPlan`] deterministically injures a worker's outbound frame
//! stream — kill after N tasks, drop/truncate exactly one frame,
//! partition (shut down) the connection, delay every k-th frame, corrupt
//! a result checksum. Plans parse from compact `key=value` specs (the
//! CLI's `--fault`) or derive from a seed, and the chaos tests assert the
//! merged results stay bit-identical to a local [`SweepRunner`] run under
//! every schedule.

use std::collections::HashSet;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simcal_sim::codec::{
    encode_msg, read_frame, scenario_from_json, scenario_to_json, write_frame, FrameError, Json,
    WireMsg,
};
use simcal_sim::Scenario;

use crate::backoff::Backoff;
use crate::dist::{
    count_results, fnv1a, merge_results, requeue_orphans, requeue_task, resume_spool,
    run_worker_sharded, spool_tasks, sweep_result_from_json, sweep_result_to_json,
    unfinished_claims, write_atomic, write_result, DistError, SpoolSource,
};
use crate::sweep::{SweepResult, SweepRunner};

/// How often a connection handler wakes from a blocked read to check the
/// done flag and the heartbeat deadline.
const HANDLER_POLL: Duration = Duration::from_millis(25);

/// How long a handler waits for a worker's `Bye` after sending `Drain`.
/// Longer than the worker's idle re-claim backoff cap, so a worker
/// sleeping between claims still sees the `Drain` inside the window.
const DRAIN_WAIT: Duration = Duration::from_secs(1);

/// Local-drain recovery rounds before the coordinator gives up and lets
/// the merge report what is missing (mirrors `dist::MAX_RECOVERIES`).
const MAX_RECOVERIES: u32 = 3;

fn net_err(addr: &str, msg: impl Into<String>) -> DistError {
    DistError::Net { addr: addr.to_string(), msg: msg.into() }
}

// ---- fault injection -------------------------------------------------------

/// A deterministic fault schedule for one [`TcpWorker`].
///
/// Frame ordinals are 1-based and count every frame the worker *attempts*
/// to send, across all of its threads and reconnects (heartbeats
/// included), so a given plan injures the same point in the stream on
/// every run with the same timing-insensitive schedule. All faults are
/// one-shot except `delay_every`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Abruptly kill the whole worker (no `Drain`, no `Bye`, sockets
    /// reset) after it has completed this many tasks.
    pub kill_after_tasks: Option<u64>,
    /// Silently swallow the Nth outbound frame (the peer never sees it).
    pub drop_frame: Option<u64>,
    /// Send only half of the Nth outbound frame, then break the
    /// connection mid-frame.
    pub truncate_frame: Option<u64>,
    /// Shut the connection down (both directions, once) after this many
    /// outbound frames — a network partition the worker heals by
    /// redialing.
    pub partition_after: Option<u64>,
    /// Sleep `ms` before every `k`-th outbound frame: `(k, ms)` — a slow
    /// worker, not a broken one.
    pub delay_every: Option<(u64, u64)>,
    /// Flip the checksum on the Nth `Result` frame the worker sends, so
    /// the coordinator sees a corrupt result.
    pub corrupt_result: Option<u64>,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Derive one fault deterministically from a seed — the chaos oracle
    /// iterates seeds to sweep the fault space.
    pub fn seeded(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_1A17);
        let mut plan = Self::default();
        match rng.random_range(0..6u64) {
            0 => plan.kill_after_tasks = Some(rng.random_range(1..3u64)),
            1 => plan.drop_frame = Some(rng.random_range(2..8u64)),
            2 => plan.truncate_frame = Some(rng.random_range(2..8u64)),
            3 => plan.partition_after = Some(rng.random_range(1..6u64)),
            4 => plan.delay_every = Some((rng.random_range(2..5u64), rng.random_range(10..40u64))),
            _ => plan.corrupt_result = Some(rng.random_range(1..3u64)),
        }
        plan
    }

    /// Parse a compact spec: comma-separated `key=value` pairs from
    /// `kill-after`, `drop-frame`, `truncate-frame`, `partition-after`,
    /// `delay-every` (value `KxMS`), `corrupt-result` — or a lone
    /// `seed=N` which expands through [`FaultPlan::seeded`].
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        let mut seed = None;
        for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, val) =
                part.split_once('=').ok_or_else(|| format!("fault {part:?} is not key=value"))?;
            let num = |v: &str| {
                v.parse::<u64>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("fault {part:?} needs a positive integer"))
            };
            match key {
                "kill-after" => plan.kill_after_tasks = Some(num(val)?),
                "drop-frame" => plan.drop_frame = Some(num(val)?),
                "truncate-frame" => plan.truncate_frame = Some(num(val)?),
                "partition-after" => plan.partition_after = Some(num(val)?),
                "delay-every" => {
                    let (k, ms) = val
                        .split_once('x')
                        .ok_or_else(|| format!("fault {part:?} wants delay-every=KxMS"))?;
                    plan.delay_every = Some((num(k)?, num(ms)?));
                }
                "corrupt-result" => plan.corrupt_result = Some(num(val)?),
                "seed" => seed = Some(num(val)?),
                other => return Err(format!("unknown fault key {other:?}")),
            }
        }
        match seed {
            Some(s) if plan.is_empty() => Ok(Self::seeded(s)),
            Some(_) => Err("fault seed=N cannot be combined with explicit faults".to_string()),
            None => Ok(plan),
        }
    }

    /// The spec string [`FaultPlan::parse`] round-trips (empty for no
    /// faults).
    pub fn spec(&self) -> String {
        let mut parts = Vec::new();
        if let Some(n) = self.kill_after_tasks {
            parts.push(format!("kill-after={n}"));
        }
        if let Some(n) = self.drop_frame {
            parts.push(format!("drop-frame={n}"));
        }
        if let Some(n) = self.truncate_frame {
            parts.push(format!("truncate-frame={n}"));
        }
        if let Some(n) = self.partition_after {
            parts.push(format!("partition-after={n}"));
        }
        if let Some((k, ms)) = self.delay_every {
            parts.push(format!("delay-every={k}x{ms}"));
        }
        if let Some(n) = self.corrupt_result {
            parts.push(format!("corrupt-result={n}"));
        }
        parts.join(",")
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            write!(f, "none")
        } else {
            write!(f, "{}", self.spec())
        }
    }
}

// ---- the coordinator -------------------------------------------------------

/// What happened during a TCP sweep beyond the results: fleet membership
/// and every recovery path's counter.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TcpSummary {
    /// Corrupt `Result` frames (or spooled records) discarded.
    pub corrupt_results: usize,
    /// Tasks put back in the queue after their worker lost them.
    pub requeued_tasks: usize,
    /// `Hello` frames received (connections that introduced themselves).
    pub workers_joined: usize,
    /// Connections that left cleanly (`Drain`/`Bye`).
    pub workers_left: usize,
    /// Connections declared dead: heartbeat deadline passed, broken
    /// socket, or cut for repeated corruption.
    pub dead_workers: usize,
    /// Stall-recovery rounds where the coordinator drained the spool
    /// locally because the fleet went quiet.
    pub recoveries: u32,
}

impl TcpSummary {
    /// True when no fault-recovery path fired (fleet membership counters
    /// aside).
    pub fn is_clean(&self) -> bool {
        self.corrupt_results == 0
            && self.requeued_tasks == 0
            && self.dead_workers == 0
            && self.recoveries == 0
    }
}

impl std::fmt::Display for TcpSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "corrupt_results={} requeued_tasks={} workers_joined={} workers_left={} \
             dead_workers={} recoveries={}",
            self.corrupt_results,
            self.requeued_tasks,
            self.workers_joined,
            self.workers_left,
            self.dead_workers,
            self.recoveries
        )
    }
}

/// Why a connection handler stopped.
enum Close {
    /// We drained the worker (or it said goodbye after our `Drain`).
    Drained,
    /// The worker left on its own terms (`Drain`/`Bye`, or a clean close
    /// with nothing in flight).
    Left,
    /// Heartbeat deadline passed, socket broke, frames corrupted, or the
    /// worker repeatedly sent corrupt results.
    Dead,
}

/// A `Claim`'s answer, from the coordinator's shared state.
enum NextTask {
    /// Hand out this task.
    Task(usize, Json),
    /// Queue empty but claims still unfinished: worker should back off
    /// and re-claim.
    Wait,
    /// Everything is done; drain the worker.
    Drain,
    /// Shared state hit a fatal error; close the connection.
    Fatal,
}

/// State shared between the accept/monitor loop and every connection
/// handler thread.
struct CoordShared {
    spool: PathBuf,
    /// Manifest scenario names, indexed by task index.
    names: Vec<String>,
    source: SpoolSource,
    done: AtomicBool,
    stall: Duration,
    fatal: Mutex<Option<DistError>>,
    /// Task indices already forgiven one corrupt result.
    corrupt_seen: Mutex<HashSet<usize>>,
    corrupt_results: AtomicUsize,
    requeued: AtomicUsize,
    joined: AtomicUsize,
    left: AtomicUsize,
    dead: AtomicUsize,
}

impl CoordShared {
    fn fatal(&self, e: DistError) {
        let mut slot = self.fatal.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    /// Put a lost task back in the queue (benign if it already has a
    /// result or is already queued).
    fn requeue(&self, index: usize) {
        match requeue_task(&self.spool, index) {
            Ok(true) => {
                self.requeued.fetch_add(1, Ordering::SeqCst);
            }
            Ok(false) => {}
            Err(e) => self.fatal(e),
        }
    }

    fn next_task(&self) -> NextTask {
        if self.done.load(Ordering::SeqCst) {
            return NextTask::Drain;
        }
        match self.source.try_claim() {
            Ok(Some((index, sc))) => NextTask::Task(index, scenario_to_json(&sc)),
            Ok(None) => match unfinished_claims(&self.spool) {
                Ok(0) => NextTask::Drain,
                Ok(_) => NextTask::Wait,
                Err(e) => {
                    self.fatal(e);
                    NextTask::Fatal
                }
            },
            Err(e) => {
                self.fatal(e);
                NextTask::Fatal
            }
        }
    }

    /// Validate and journal one `Result` frame. Returns `false` when the
    /// connection should be cut (repeated corruption, nonsense index, or
    /// a fatal spool error).
    fn accept_result(&self, index: usize, sum: u64, payload: &Json) -> bool {
        let decoded = if index < self.names.len() && fnv1a(payload.write().as_bytes()) == sum {
            sweep_result_from_json(payload).ok().filter(|r| r.name == self.names[index])
        } else {
            None
        };
        if let Some(result) = decoded {
            return match write_result(&self.spool, index, &result) {
                Ok(()) => true,
                Err(e) => {
                    self.fatal(e);
                    false
                }
            };
        }
        self.corrupt_results.fetch_add(1, Ordering::SeqCst);
        if index < self.names.len() && self.corrupt_seen.lock().insert(index) {
            // First offense for this task: requeue and keep the
            // connection (the corruption may have been in transit).
            self.requeue(index);
            true
        } else {
            false
        }
    }

    /// Drive one worker connection until it drains, leaves, or dies.
    fn handle(&self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if stream.set_read_timeout(Some(HANDLER_POLL)).is_err() {
            return;
        }
        let mut inflight: Option<usize> = None;
        let mut last_alive = Instant::now();
        let close = loop {
            if self.done.load(Ordering::SeqCst) && inflight.is_none() {
                break self.drain_peer(&stream);
            }
            match read_frame(&mut (&stream)) {
                Ok(msg) => {
                    last_alive = Instant::now();
                    match msg {
                        WireMsg::Hello { .. } => {
                            self.joined.fetch_add(1, Ordering::SeqCst);
                        }
                        WireMsg::Claim => {
                            // A claim while we still think a task is in
                            // flight means the worker lost it (most
                            // often a dropped Result frame): frames on
                            // one socket are ordered, so a result for it
                            // can no longer arrive.
                            if let Some(prev) = inflight.take() {
                                self.requeue(prev);
                            }
                            match self.next_task() {
                                NextTask::Task(index, scenario) => {
                                    let msg = WireMsg::Task { index: index as u64, scenario };
                                    if write_frame(&mut (&stream), &msg).is_err() {
                                        self.requeue(index);
                                        break Close::Dead;
                                    }
                                    inflight = Some(index);
                                }
                                NextTask::Wait => {
                                    let nudge = WireMsg::Heartbeat { inflight: None };
                                    if write_frame(&mut (&stream), &nudge).is_err() {
                                        break Close::Dead;
                                    }
                                }
                                NextTask::Drain => break self.drain_peer(&stream),
                                NextTask::Fatal => break Close::Dead,
                            }
                        }
                        WireMsg::Result { index, sum, payload } => {
                            let index = index as usize;
                            if inflight == Some(index) {
                                inflight = None;
                            }
                            if !self.accept_result(index, sum, &payload) {
                                break Close::Dead;
                            }
                        }
                        WireMsg::Heartbeat { .. } => {}
                        WireMsg::Drain => {
                            if let Some(prev) = inflight.take() {
                                self.requeue(prev);
                            }
                            let _ = write_frame(&mut (&stream), &WireMsg::Bye);
                            break Close::Left;
                        }
                        WireMsg::Bye => break Close::Left,
                        // A worker has no business sending Task frames.
                        WireMsg::Task { .. } => break Close::Dead,
                    }
                }
                Err(FrameError::TimedOut) => {
                    if last_alive.elapsed() > self.stall {
                        break Close::Dead;
                    }
                }
                // A close without a goodbye is unclean, whatever was in
                // flight (clean leaves go through Drain/Bye above), and
                // so is any framing error.
                Err(_) => break Close::Dead,
            }
        };
        if let Some(prev) = inflight {
            self.requeue(prev);
        }
        match close {
            Close::Drained | Close::Left => {
                self.left.fetch_add(1, Ordering::SeqCst);
            }
            Close::Dead => {
                self.dead.fetch_add(1, Ordering::SeqCst);
            }
        }
        let _ = stream.shutdown(Shutdown::Both);
    }

    /// Tell a worker no more work is coming and wait briefly for its
    /// `Bye`, answering any frames already in flight.
    fn drain_peer(&self, stream: &TcpStream) -> Close {
        if write_frame(&mut (&*stream), &WireMsg::Drain).is_err() {
            return Close::Dead;
        }
        let start = Instant::now();
        while start.elapsed() < DRAIN_WAIT {
            match read_frame(&mut (&*stream)) {
                Ok(WireMsg::Bye) => return Close::Drained,
                Ok(WireMsg::Drain) => {
                    let _ = write_frame(&mut (&*stream), &WireMsg::Bye);
                    return Close::Drained;
                }
                // A claim crossed our drain on the wire: repeat it.
                Ok(WireMsg::Claim) => {
                    if write_frame(&mut (&*stream), &WireMsg::Drain).is_err() {
                        return Close::Drained;
                    }
                }
                // A late result is still a result.
                Ok(WireMsg::Result { index, sum, payload }) => {
                    let _ = self.accept_result(index as usize, sum, &payload);
                }
                Ok(_) => {}
                Err(FrameError::TimedOut) => {}
                Err(_) => return Close::Drained,
            }
        }
        Close::Drained
    }
}

/// The TCP sweep coordinator: spools the grid, listens on a socket, and
/// drives an elastic fleet of [`TcpWorker`]s to drain it. Results land in
/// the same durable spool as [`DistSweep`](crate::dist::DistSweep), so
/// every recovery invariant (checksums, atomic renames, resume) carries
/// over; the transport only changes how tasks and results travel.
#[derive(Debug)]
pub struct TcpSweep {
    spool: PathBuf,
    listen: String,
    threads: usize,
    engine_shards: usize,
    stall_timeout: Duration,
    seed: u64,
    resume: bool,
}

impl TcpSweep {
    /// A coordinator spooling into `spool` and listening on `listen`
    /// (e.g. `"127.0.0.1:0"` — port 0 picks a free port, published in
    /// the spool's `addr` file).
    pub fn new(spool: impl Into<PathBuf>, listen: impl Into<String>) -> Self {
        Self {
            spool: spool.into(),
            listen: listen.into(),
            threads: 1,
            engine_shards: 1,
            stall_timeout: Duration::from_secs(30),
            seed: 0,
            resume: false,
        }
    }

    /// Threads for the coordinator's own local drain (the stall-recovery
    /// fallback).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Partitioned-engine shards per scenario for the local fallback.
    pub fn with_engine_shards(mut self, engine_shards: usize) -> Self {
        self.engine_shards = engine_shards.max(1);
        self
    }

    /// How long the fleet may go without producing a single result (and a
    /// single connection may go without a frame) before recovery kicks
    /// in.
    pub fn with_stall_timeout(mut self, stall: Duration) -> Self {
        self.stall_timeout = stall;
        self
    }

    /// Seed for the coordinator's polling-backoff jitter.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Resume a crashed coordinator's spool instead of demanding a fresh
    /// directory (validates the manifest against the grid and requeues
    /// orphans first).
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Run the sweep: spool (or resume), listen, serve workers until
    /// every task has a result, then merge. Returns the results in grid
    /// order plus the recovery counters.
    pub fn run(&self, grid: &[Scenario]) -> Result<(Vec<SweepResult>, TcpSummary), DistError> {
        let resumed_requeues = if self.resume {
            resume_spool(&self.spool, grid)?
        } else {
            spool_tasks(&self.spool, grid)?;
            0
        };
        let listener = TcpListener::bind(&self.listen)
            .map_err(|e| net_err(&self.listen, format!("bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| net_err(&self.listen, format!("no local addr: {e}")))?
            .to_string();
        write_atomic(&self.spool, &self.spool.join("addr"), &addr)?;
        listener
            .set_nonblocking(true)
            .map_err(|e| net_err(&addr, format!("nonblocking accept unavailable: {e}")))?;

        let shared = CoordShared {
            spool: self.spool.clone(),
            names: crate::dist::read_manifest(&self.spool)?,
            source: SpoolSource::open(&self.spool),
            done: AtomicBool::new(false),
            stall: self.stall_timeout,
            fatal: Mutex::new(None),
            corrupt_seen: Mutex::new(HashSet::new()),
            corrupt_results: AtomicUsize::new(0),
            requeued: AtomicUsize::new(resumed_requeues),
            joined: AtomicUsize::new(0),
            left: AtomicUsize::new(0),
            dead: AtomicUsize::new(0),
        };
        let shared = &shared;
        let n_tasks = shared.names.len();
        let mut recoveries = 0u32;

        let served: Result<(), DistError> = crossbeam::thread::scope(|scope| {
            let mut poll =
                Backoff::new(Duration::from_millis(2), Duration::from_millis(40), self.seed);
            let mut last_count = count_results(&self.spool)?;
            let mut idle_since = Instant::now();
            let outcome = loop {
                if let Some(e) = shared.fatal.lock().take() {
                    break Err(e);
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        scope.spawn(move |_| shared.handle(stream));
                        poll.reset();
                        continue;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    // Transient accept errors (e.g. aborted handshakes)
                    // are not fatal to the sweep.
                    Err(_) => {}
                }
                let done_now = match count_results(&self.spool) {
                    Ok(n) => n,
                    Err(e) => break Err(e),
                };
                if done_now >= n_tasks {
                    break Ok(());
                }
                if done_now > last_count {
                    last_count = done_now;
                    idle_since = Instant::now();
                    poll.reset();
                }
                if idle_since.elapsed() >= self.stall_timeout {
                    // The fleet went quiet for a whole stall window:
                    // steal everything back and drain locally, so the
                    // sweep terminates no matter what the workers do.
                    recoveries += 1;
                    match requeue_orphans(&self.spool) {
                        Ok(n) => {
                            shared.requeued.fetch_add(n, Ordering::SeqCst);
                        }
                        Err(e) => break Err(e),
                    }
                    if let Err(e) =
                        run_worker_sharded(&self.spool, self.threads, self.engine_shards)
                    {
                        break Err(e);
                    }
                    idle_since = Instant::now();
                    poll.reset();
                    if recoveries >= MAX_RECOVERIES {
                        // Let the merge report whatever is still missing.
                        break Ok(());
                    }
                    continue;
                }
                poll.sleep();
            };
            shared.done.store(true, Ordering::SeqCst);
            // Closing the listener resets any un-accepted backlog
            // connections so late dialers fail fast instead of hanging.
            drop(listener);
            outcome
        })
        .expect("connection handler panicked");
        served?;

        // Merge, recovering from corrupt spool records the same way the
        // process transport does: discard + requeue once per task, drain
        // locally, retry.
        let results = loop {
            match merge_results(&self.spool) {
                Ok(results) => break results,
                Err(e @ (DistError::Corrupt { .. } | DistError::Codec { .. })) => {
                    let path = match &e {
                        DistError::Corrupt { path, .. } | DistError::Codec { path, .. } => path,
                        _ => unreachable!(),
                    };
                    let Some(index) = crate::dist::corrupt_result_index(&self.spool, path) else {
                        return Err(e);
                    };
                    if !shared.corrupt_seen.lock().insert(index) {
                        return Err(e);
                    }
                    crate::dist::discard_corrupt_result(&self.spool, index)?;
                    shared.corrupt_results.fetch_add(1, Ordering::SeqCst);
                    shared.requeued.fetch_add(1, Ordering::SeqCst);
                    run_worker_sharded(&self.spool, self.threads, self.engine_shards)?;
                }
                Err(DistError::Incomplete { .. }) if recoveries < MAX_RECOVERIES => {
                    // Workers that died at the very end may have left
                    // claims behind after the monitor loop exited.
                    recoveries += 1;
                    let n = requeue_orphans(&self.spool)?;
                    shared.requeued.fetch_add(n, Ordering::SeqCst);
                    run_worker_sharded(&self.spool, self.threads, self.engine_shards)?;
                }
                Err(e) => return Err(e),
            }
        };

        let summary = TcpSummary {
            corrupt_results: shared.corrupt_results.load(Ordering::SeqCst),
            requeued_tasks: shared.requeued.load(Ordering::SeqCst),
            workers_joined: shared.joined.load(Ordering::SeqCst),
            workers_left: shared.left.load(Ordering::SeqCst),
            dead_workers: shared.dead.load(Ordering::SeqCst),
            recoveries,
        };
        Ok((results, summary))
    }
}

/// The coordinator's published address, once it has bound (the spool's
/// `addr` file) — how same-host tooling and tests discover a port-0
/// listener.
pub fn read_addr(spool: &Path) -> Option<String> {
    let text = std::fs::read_to_string(spool.join("addr")).ok()?;
    let addr = text.trim().to_string();
    (!addr.is_empty()).then_some(addr)
}

// ---- the worker ------------------------------------------------------------

/// How a [`TcpWorker`] run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerOutcome {
    /// The coordinator drained us (or `max_tasks` led to a graceful
    /// leave): every connection said goodbye cleanly.
    Drained {
        /// Tasks completed across all threads.
        completed: usize,
    },
    /// The fault plan killed the worker abruptly mid-sweep.
    Killed {
        /// Tasks completed before the kill.
        completed: usize,
    },
}

impl WorkerOutcome {
    /// Tasks completed, however the run ended.
    pub fn completed(&self) -> usize {
        match self {
            WorkerOutcome::Drained { completed } | WorkerOutcome::Killed { completed } => {
                *completed
            }
        }
    }
}

/// Why one worker connection ended.
enum ConnEnd {
    /// Coordinator drained us: stop for good.
    Drained,
    /// Fault plan kill: stop abruptly.
    Killed,
    /// Connection broke: redial and continue.
    Reconnect,
}

/// Counters shared across a worker's threads (and with the fault layer:
/// frame ordinals are global so a plan injures a fixed point in the
/// stream).
#[derive(Default)]
struct WorkerShared {
    killed: AtomicBool,
    frames: AtomicU64,
    results_sent: AtomicU64,
    tasks_done: AtomicU64,
    partition_fired: AtomicBool,
}

/// Outcome of one fault-filtered send.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Sent {
    Ok,
    Broken,
}

/// The write half of one worker connection, with the fault plan applied
/// to every outbound frame. Shared between the protocol loop and the
/// heartbeat ticker behind a mutex, so frames never interleave.
struct Conn<'a> {
    writer: Mutex<TcpStream>,
    plan: &'a FaultPlan,
    shared: &'a WorkerShared,
}

impl<'a> Conn<'a> {
    fn new(stream: &TcpStream, plan: &'a FaultPlan, shared: &'a WorkerShared) -> Option<Conn<'a>> {
        stream.try_clone().ok().map(|w| Conn { writer: Mutex::new(w), plan, shared })
    }

    fn send(&self, msg: &WireMsg) -> Sent {
        let mut writer = self.writer.lock();
        let n = self.shared.frames.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some((k, ms)) = self.plan.delay_every {
            if n.is_multiple_of(k) {
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
        if self.plan.drop_frame == Some(n) {
            // Pretend the frame went out; the peer never sees it.
            return Sent::Ok;
        }
        if self.plan.truncate_frame == Some(n) {
            let body = encode_msg(msg);
            let len = (body.len() as u32).to_be_bytes();
            let half = &body.as_bytes()[..body.len() / 2];
            let _ = std::io::Write::write_all(&mut *writer, &len);
            let _ = std::io::Write::write_all(&mut *writer, half);
            let _ = std::io::Write::flush(&mut *writer);
            let _ = writer.shutdown(Shutdown::Both);
            return Sent::Broken;
        }
        if let Some(p) = self.plan.partition_after {
            if n > p && !self.shared.partition_fired.swap(true, Ordering::SeqCst) {
                let _ = writer.shutdown(Shutdown::Both);
                return Sent::Broken;
            }
        }
        match write_frame(&mut *writer, msg) {
            Ok(()) => Sent::Ok,
            Err(_) => Sent::Broken,
        }
    }

    fn abrupt_close(&self) {
        let _ = self.writer.lock().shutdown(Shutdown::Both);
    }
}

/// A TCP sweep worker: dials the coordinator, claims tasks one at a time
/// per thread, and streams results back. Reconnects through seeded
/// backoff when the connection breaks; leaves gracefully (`Drain`/`Bye`)
/// when the coordinator drains it or `max_tasks` is reached.
#[derive(Debug)]
pub struct TcpWorker {
    addr: String,
    name: String,
    threads: usize,
    engine_shards: usize,
    seed: u64,
    heartbeat: Duration,
    patience: Duration,
    dial_attempts: u32,
    max_tasks: Option<u64>,
    fault: FaultPlan,
}

impl TcpWorker {
    /// A worker dialing `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            name: format!("pid-{}", std::process::id()),
            threads: 1,
            engine_shards: 1,
            seed: 0,
            heartbeat: Duration::from_millis(500),
            patience: Duration::from_secs(30),
            dial_attempts: 40,
            max_tasks: None,
            fault: FaultPlan::default(),
        }
    }

    /// Display name the coordinator sees in `Hello` frames.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Concurrent connections (one task in flight per thread).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Partitioned-engine shards per scenario.
    pub fn with_engine_shards(mut self, engine_shards: usize) -> Self {
        self.engine_shards = engine_shards.max(1);
        self
    }

    /// Seed for the dial/claim backoff jitter (and anything else this
    /// worker randomizes).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Heartbeat interval (also the read-poll granularity).
    pub fn with_heartbeat(mut self, heartbeat: Duration) -> Self {
        self.heartbeat = heartbeat.max(Duration::from_millis(1));
        self
    }

    /// How long to wait for a claim's reply before giving up on the
    /// connection and redialing.
    pub fn with_patience(mut self, patience: Duration) -> Self {
        self.patience = patience.max(Duration::from_millis(1));
        self
    }

    /// Consecutive failed dials before the worker gives up entirely.
    pub fn with_dial_attempts(mut self, attempts: u32) -> Self {
        self.dial_attempts = attempts.max(1);
        self
    }

    /// Leave gracefully (send `Drain`) after completing this many tasks
    /// across all threads — the elastic scale-down path.
    pub fn with_max_tasks(mut self, max_tasks: u64) -> Self {
        self.max_tasks = Some(max_tasks);
        self
    }

    /// Inject this fault schedule into the worker's outbound frames.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Run until drained, killed by the fault plan, or unable to reach
    /// the coordinator.
    pub fn run(&self) -> Result<WorkerOutcome, DistError> {
        let shared = WorkerShared::default();
        let shared = &shared;
        let outcomes: Vec<Result<(ConnEnd, usize), DistError>> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.threads)
                    .map(|t| scope.spawn(move |_| self.worker_thread(t, shared)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
            })
            .expect("worker scope failed");
        let mut completed = 0;
        let mut killed = false;
        let mut first_err = None;
        for outcome in outcomes {
            match outcome {
                Ok((ConnEnd::Killed, n)) => {
                    killed = true;
                    completed += n;
                }
                Ok((_, n)) => completed += n,
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if killed {
            Ok(WorkerOutcome::Killed { completed })
        } else if let Some(e) = first_err {
            Err(e)
        } else {
            Ok(WorkerOutcome::Drained { completed })
        }
    }

    /// One thread: dial, drive the connection, redial on breakage.
    fn worker_thread(
        &self,
        t: usize,
        shared: &WorkerShared,
    ) -> Result<(ConnEnd, usize), DistError> {
        let runner = SweepRunner::new().with_workers(1).with_engine_shards(self.engine_shards);
        let thread_seed = self.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut dial = Backoff::new(Duration::from_millis(20), Duration::from_secs(2), thread_seed);
        let mut completed = 0usize;
        loop {
            if shared.killed.load(Ordering::SeqCst) {
                return Ok((ConnEnd::Killed, completed));
            }
            let stream = match TcpStream::connect(&self.addr) {
                Ok(s) => s,
                Err(e) => {
                    if dial.attempt() >= self.dial_attempts {
                        return Err(net_err(
                            &self.addr,
                            format!("gave up dialing after {} attempts: {e}", dial.attempt()),
                        ));
                    }
                    dial.sleep();
                    continue;
                }
            };
            dial.reset();
            let _ = stream.set_nodelay(true);
            // Poll reads finely regardless of the heartbeat cadence, so
            // patience/drain windows are honored promptly.
            let poll = self.heartbeat.min(Duration::from_millis(50));
            if stream.set_read_timeout(Some(poll)).is_err() {
                dial.sleep();
                continue;
            }
            let Some(conn) = Conn::new(&stream, &self.fault, shared) else {
                dial.sleep();
                continue;
            };
            match self.drive_connection(t, &stream, &conn, &runner, shared, &mut completed) {
                ConnEnd::Drained => return Ok((ConnEnd::Drained, completed)),
                ConnEnd::Killed => {
                    conn.abrupt_close();
                    return Ok((ConnEnd::Killed, completed));
                }
                ConnEnd::Reconnect => {
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }
    }

    /// Introduce ourselves, start the heartbeat ticker, and run the
    /// claim/compute/result loop until the connection ends.
    fn drive_connection(
        &self,
        t: usize,
        stream: &TcpStream,
        conn: &Conn<'_>,
        runner: &SweepRunner,
        shared: &WorkerShared,
        completed: &mut usize,
    ) -> ConnEnd {
        let hello = WireMsg::Hello { worker: format!("{}/t{t}", self.name) };
        if conn.send(&hello) == Sent::Broken {
            return ConnEnd::Reconnect;
        }
        // -1 encodes "nothing in flight" (task indices are small).
        let inflight = AtomicI64::new(-1);
        let stop = AtomicBool::new(false);
        crossbeam::thread::scope(|scope| {
            scope.spawn(|_| {
                let interrupted =
                    || stop.load(Ordering::SeqCst) || shared.killed.load(Ordering::SeqCst);
                'ticking: loop {
                    // Sleep one heartbeat interval in small slices so the
                    // ticker stops promptly when the connection ends.
                    let start = Instant::now();
                    while start.elapsed() < self.heartbeat {
                        if interrupted() {
                            break 'ticking;
                        }
                        std::thread::sleep(Duration::from_millis(5).min(self.heartbeat));
                    }
                    let cur = inflight.load(Ordering::SeqCst);
                    let beat = WireMsg::Heartbeat { inflight: u64::try_from(cur).ok() };
                    if conn.send(&beat) == Sent::Broken {
                        break;
                    }
                }
            });
            let end = self.protocol_loop(stream, conn, runner, shared, &inflight, completed);
            stop.store(true, Ordering::SeqCst);
            end
        })
        .expect("heartbeat ticker panicked")
    }

    #[allow(clippy::too_many_lines)]
    fn protocol_loop(
        &self,
        stream: &TcpStream,
        conn: &Conn<'_>,
        runner: &SweepRunner,
        shared: &WorkerShared,
        inflight: &AtomicI64,
        completed: &mut usize,
    ) -> ConnEnd {
        let mut claim_pause =
            Backoff::new(Duration::from_millis(25), Duration::from_millis(250), self.seed ^ 0x5EED);
        loop {
            if shared.killed.load(Ordering::SeqCst) {
                return ConnEnd::Killed;
            }
            if self.max_tasks.is_some_and(|m| shared.tasks_done.load(Ordering::SeqCst) >= m) {
                // Graceful scale-down: announce the leave and wait for
                // the goodbye.
                let _ = conn.send(&WireMsg::Drain);
                self.await_bye(stream);
                return ConnEnd::Drained;
            }
            if conn.send(&WireMsg::Claim) == Sent::Broken {
                return ConnEnd::Reconnect;
            }
            let reply = match self.await_reply(stream, shared) {
                Ok(msg) => msg,
                Err(end) => return end,
            };
            match reply {
                WireMsg::Task { index, scenario } => {
                    let Ok(sc) = scenario_from_json(&scenario) else {
                        // An undecodable task is a protocol failure;
                        // break the connection so the coordinator
                        // requeues it.
                        return ConnEnd::Reconnect;
                    };
                    inflight.store(index as i64, Ordering::SeqCst);
                    let result = runner.run_scenario(&sc);
                    inflight.store(-1, Ordering::SeqCst);
                    if shared.killed.load(Ordering::SeqCst) {
                        return ConnEnd::Killed;
                    }
                    let payload = sweep_result_to_json(&result);
                    let mut sum = fnv1a(payload.write().as_bytes());
                    let nth_result = shared.results_sent.fetch_add(1, Ordering::SeqCst) + 1;
                    if self.fault.corrupt_result == Some(nth_result) {
                        sum ^= 0xBAD_F00D;
                    }
                    let sent = conn.send(&WireMsg::Result { index, sum, payload });
                    *completed += 1;
                    let total = shared.tasks_done.fetch_add(1, Ordering::SeqCst) + 1;
                    if self.fault.kill_after_tasks == Some(total) {
                        shared.killed.store(true, Ordering::SeqCst);
                        return ConnEnd::Killed;
                    }
                    if sent == Sent::Broken {
                        return ConnEnd::Reconnect;
                    }
                    claim_pause.reset();
                }
                // "Queue empty but not done": back off, then re-claim.
                WireMsg::Heartbeat { .. } => claim_pause.sleep(),
                WireMsg::Drain => {
                    let _ = conn.send(&WireMsg::Bye);
                    return ConnEnd::Drained;
                }
                WireMsg::Bye => return ConnEnd::Drained,
                _ => return ConnEnd::Reconnect,
            }
        }
    }

    /// Wait for the coordinator's answer to a claim, up to `patience`.
    fn await_reply(&self, stream: &TcpStream, shared: &WorkerShared) -> Result<WireMsg, ConnEnd> {
        let start = Instant::now();
        loop {
            if shared.killed.load(Ordering::SeqCst) {
                return Err(ConnEnd::Killed);
            }
            match read_frame(&mut (&*stream)) {
                Ok(msg) => return Ok(msg),
                Err(FrameError::TimedOut) => {
                    if start.elapsed() > self.patience {
                        return Err(ConnEnd::Reconnect);
                    }
                }
                Err(_) => return Err(ConnEnd::Reconnect),
            }
        }
    }

    /// Wait briefly for `Bye` after announcing our own drain.
    fn await_bye(&self, stream: &TcpStream) {
        let start = Instant::now();
        while start.elapsed() < self.patience.min(DRAIN_WAIT) {
            match read_frame(&mut (&*stream)) {
                Ok(WireMsg::Bye) | Err(FrameError::Closed) => return,
                Ok(_) | Err(FrameError::TimedOut) => {}
                Err(_) => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::spool_tasks;
    use simcal_sim::ScenarioRegistry;

    fn grid(n: usize) -> Vec<Scenario> {
        ScenarioRegistry::reduced().scenarios().into_iter().take(n).collect()
    }

    fn fresh_spool(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simcal-net-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn fingerprints(rs: &[SweepResult]) -> Vec<(String, Vec<u64>, u64, u64)> {
        rs.iter().map(SweepResult::fingerprint).collect()
    }

    fn local(grid: &[Scenario]) -> Vec<SweepResult> {
        SweepRunner::new().with_workers(2).run(grid)
    }

    /// A coordinator on a fresh port with test-scale timeouts.
    fn coordinator(spool: &Path) -> TcpSweep {
        TcpSweep::new(spool, "127.0.0.1:0")
            .with_stall_timeout(Duration::from_millis(1500))
            .with_seed(7)
    }

    /// A worker with test-scale timeouts (fast heartbeats, short
    /// patience so dropped-reply recovery doesn't dominate the test).
    fn fast_worker(addr: String, seed: u64) -> TcpWorker {
        TcpWorker::new(addr)
            .with_heartbeat(Duration::from_millis(25))
            .with_patience(Duration::from_millis(600))
            .with_seed(seed)
    }

    fn wait_addr(spool: &Path) -> String {
        let start = Instant::now();
        loop {
            if let Some(addr) = read_addr(spool) {
                return addr;
            }
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "coordinator never published an address"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    type WorkerBuilder = Box<dyn FnOnce(String) -> TcpWorker + Send>;

    fn worker(f: impl FnOnce(String) -> TcpWorker + Send + 'static) -> WorkerBuilder {
        Box::new(f)
    }

    type TcpRun =
        (Result<(Vec<SweepResult>, TcpSummary), DistError>, Vec<Result<WorkerOutcome, DistError>>);

    /// Run a coordinator and a fleet of workers (each built once the
    /// listen address is published) to completion.
    fn run_tcp(
        spool: &Path,
        grid: &[Scenario],
        coord: TcpSweep,
        fleet: Vec<WorkerBuilder>,
    ) -> TcpRun {
        crossbeam::thread::scope(|scope| {
            let coord = scope.spawn(|_| coord.run(grid));
            let addr = wait_addr(spool);
            let handles: Vec<_> = fleet
                .into_iter()
                .map(|build| {
                    let addr = addr.clone();
                    scope.spawn(move |_| build(addr).run())
                })
                .collect();
            let outcomes = handles.into_iter().map(|h| h.join().expect("worker")).collect();
            (coord.join().expect("coordinator"), outcomes)
        })
        .expect("tcp test scope")
    }

    #[test]
    fn tcp_sweep_matches_the_local_runner() {
        let grid = grid(4);
        let spool = fresh_spool("basic");
        let (coord, outcomes) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool),
            vec![worker(|a| fast_worker(a, 1)), worker(|a| fast_worker(a, 2).with_threads(2))],
        );
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert!(summary.is_clean(), "clean run fired a recovery path: {summary}");
        assert_eq!(summary.workers_joined, 3, "two workers, three connections");
        let drained: usize = outcomes.iter().map(|o| o.as_ref().unwrap().completed()).sum();
        assert_eq!(drained, grid.len(), "every task completed over TCP, none locally");
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn killed_worker_loses_nothing() {
        let grid = grid(4);
        let spool = fresh_spool("kill");
        let plan = FaultPlan { kill_after_tasks: Some(1), ..FaultPlan::default() };
        let (coord, outcomes) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool),
            vec![
                worker(move |a| fast_worker(a, 3).with_fault(plan)),
                worker(|a| fast_worker(a, 4)),
            ],
        );
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert_eq!(outcomes[0].as_ref().unwrap(), &WorkerOutcome::Killed { completed: 1 });
        assert_eq!(outcomes[1].as_ref().unwrap().completed(), grid.len() - 1);
        assert!(summary.dead_workers >= 1, "the kill went unnoticed: {summary}");
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn dropped_result_frame_is_requeued_on_the_next_claim() {
        let grid = grid(3);
        let spool = fresh_spool("drop");
        // Long heartbeat so the frame ordinals are deterministic:
        // Hello(1), Claim(2), Result(3) — the first result vanishes.
        let plan = FaultPlan { drop_frame: Some(3), ..FaultPlan::default() };
        let (coord, outcomes) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool),
            vec![worker(move |a| {
                fast_worker(a, 5).with_heartbeat(Duration::from_secs(5)).with_fault(plan)
            })],
        );
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert!(summary.requeued_tasks >= 1, "dropped result was not requeued: {summary}");
        assert!(outcomes[0].is_ok());
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn truncated_frame_breaks_the_connection_not_the_sweep() {
        let grid = grid(3);
        let spool = fresh_spool("trunc");
        let plan = FaultPlan { truncate_frame: Some(3), ..FaultPlan::default() };
        let (coord, _) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool),
            vec![worker(move |a| {
                fast_worker(a, 6).with_heartbeat(Duration::from_secs(5)).with_fault(plan)
            })],
        );
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert!(
            summary.requeued_tasks >= 1 || summary.dead_workers >= 1,
            "truncation left no trace: {summary}"
        );
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn partition_heals_by_redialing() {
        let grid = grid(3);
        let spool = fresh_spool("part");
        let plan = FaultPlan { partition_after: Some(2), ..FaultPlan::default() };
        let (coord, outcomes) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool),
            vec![worker(move |a| fast_worker(a, 8).with_fault(plan))],
        );
        let (results, _) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        // The partitioned result is recomputed, so the worker may count
        // more completions than there are tasks.
        assert!(outcomes[0].as_ref().unwrap().completed() >= grid.len());
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn corrupt_result_frame_is_requeued_once_and_counted() {
        let grid = grid(3);
        let spool = fresh_spool("corrupt-frame");
        let plan = FaultPlan { corrupt_result: Some(1), ..FaultPlan::default() };
        let (coord, _) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool),
            vec![worker(move |a| fast_worker(a, 9).with_fault(plan))],
        );
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert_eq!(summary.corrupt_results, 1);
        assert!(summary.requeued_tasks >= 1);
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn slow_worker_is_not_mistaken_for_a_dead_one() {
        let grid = grid(3);
        let spool = fresh_spool("slow");
        let plan = FaultPlan { delay_every: Some((2, 30)), ..FaultPlan::default() };
        let (coord, outcomes) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool),
            vec![worker(move |a| fast_worker(a, 10).with_fault(plan))],
        );
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert_eq!(summary.dead_workers, 0, "slow worker misdeclared dead: {summary}");
        assert_eq!(outcomes[0].as_ref().unwrap().completed(), grid.len());
        std::fs::remove_dir_all(&spool).ok();
    }

    /// The chaos oracle: every seeded fault schedule terminates within
    /// the stall window and merges bit-identically to a local run.
    #[test]
    fn seeded_fault_schedules_all_converge_bit_identically() {
        let grid = grid(3);
        let expected = fingerprints(&local(&grid));
        for seed in 0..6u64 {
            let plan = FaultPlan::seeded(seed);
            let spool = fresh_spool(&format!("chaos-{seed}"));
            let (coord, _) = run_tcp(
                &spool,
                &grid,
                coordinator(&spool).with_seed(seed),
                vec![
                    worker(move |a| fast_worker(a, seed).with_fault(plan)),
                    worker(move |a| fast_worker(a, seed ^ 0xFFFF)),
                ],
            );
            let (results, summary) =
                coord.unwrap_or_else(|e| panic!("chaos seed {seed} failed: {e}"));
            assert_eq!(
                fingerprints(&results),
                expected,
                "chaos seed {seed} ({}) diverged: {summary}",
                FaultPlan::seeded(seed)
            );
            std::fs::remove_dir_all(&spool).ok();
        }
    }

    #[test]
    fn worker_leaves_gracefully_after_max_tasks() {
        let grid = grid(3);
        let spool = fresh_spool("leave");
        let (coord, outcomes) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool),
            vec![worker(|a| fast_worker(a, 11).with_max_tasks(1)), worker(|a| fast_worker(a, 12))],
        );
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert_eq!(outcomes[0].as_ref().unwrap(), &WorkerOutcome::Drained { completed: 1 });
        assert!(summary.workers_left >= 2);
        assert_eq!(summary.dead_workers, 0, "graceful leave counted as death: {summary}");
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn elastic_worker_joins_mid_sweep() {
        let grid = grid(4);
        let spool = fresh_spool("elastic");
        // The early worker drags every frame out, so the sweep is still
        // running when the second worker dials in.
        let slow = FaultPlan { delay_every: Some((1, 60)), ..FaultPlan::default() };
        let (coord, outcomes) = crossbeam::thread::scope(|scope| {
            let coord = scope.spawn(|_| coordinator(&spool).run(&grid));
            let addr = wait_addr(&spool);
            let early = {
                let addr = addr.clone();
                scope.spawn(move |_| fast_worker(addr, 13).with_fault(slow).run())
            };
            let late = scope.spawn(move |_| {
                std::thread::sleep(Duration::from_millis(100));
                fast_worker(addr, 14).run()
            });
            let outcomes = vec![early.join().expect("early"), late.join().expect("late")];
            (coord.join().expect("coordinator"), outcomes)
        })
        .expect("tcp test scope");
        let (results, _) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        for o in &outcomes {
            assert!(o.is_ok(), "worker failed: {o:?}");
        }
        let late_share = outcomes[1].as_ref().unwrap().completed();
        assert!(late_share >= 1, "the late joiner never got a task");
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn no_workers_at_all_falls_back_to_a_local_drain() {
        let grid = grid(3);
        let spool = fresh_spool("fallback");
        let (results, summary) = TcpSweep::new(&spool, "127.0.0.1:0")
            .with_stall_timeout(Duration::from_millis(200))
            .with_threads(2)
            .run(&grid)
            .unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert!(summary.recoveries >= 1, "local fallback never fired: {summary}");
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn tcp_resume_continues_a_crashed_coordinators_spool() {
        let grid = grid(3);
        let spool = fresh_spool("resume");
        // A "crashed" coordinator: tasks spooled, one claimed but never
        // finished.
        spool_tasks(&spool, &grid).unwrap();
        let source = SpoolSource::open(&spool);
        source.try_claim().unwrap().expect("a task to orphan");
        drop(source);
        let (coord, outcomes) = run_tcp(
            &spool,
            &grid,
            coordinator(&spool).with_resume(true),
            vec![worker(|a| fast_worker(a, 15))],
        );
        let (results, summary) = coord.unwrap();
        assert_eq!(fingerprints(&results), fingerprints(&local(&grid)));
        assert!(summary.requeued_tasks >= 1, "orphaned claim not requeued: {summary}");
        assert!(outcomes[0].is_ok());
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn fault_plan_specs_round_trip() {
        let plan = FaultPlan {
            kill_after_tasks: Some(2),
            drop_frame: Some(5),
            truncate_frame: None,
            partition_after: Some(4),
            delay_every: Some((3, 50)),
            corrupt_result: Some(1),
        };
        let spec = plan.spec();
        assert_eq!(FaultPlan::parse(&spec).unwrap(), plan);
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("seed=3").unwrap(), FaultPlan::seeded(3));
        assert!(!FaultPlan::seeded(3).is_empty(), "a seeded plan always injects something");
        assert!(FaultPlan::parse("kill-after=0").is_err(), "ordinals are 1-based");
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("kill-after").is_err());
        assert!(FaultPlan::parse("delay-every=3").is_err());
        assert!(FaultPlan::parse("seed=1,kill-after=2").is_err());
    }
}
