//! Progressive-filling max–min fair bandwidth sharing.
//!
//! This is the fluid allocation at the core of SimGrid-style flow-level
//! models: given a set of resources with (effective) capacities and a set of
//! flows, each using a subset of the resources simultaneously and optionally
//! carrying a private rate cap, compute the max–min fair rate vector.
//!
//! The algorithm repeatedly finds the most constrained element — either a
//! resource (its remaining capacity divided by its number of unfrozen flows)
//! or a capped flow — freezes the corresponding flows at that rate, subtracts
//! the frozen bandwidth from every resource on their routes, and iterates
//! until all flows are frozen.
//!
//! ## Allocation-free scratch solves
//!
//! The solver state lives in a reusable [`SolveScratch`] arena: resource
//! capacities/remaining/shares and flow caps/rates in flat `Vec`s indexed by
//! dense component-local ids, with routes in a CSR layout (`route_off` /
//! `route_res`) plus a reverse resource→flow CSR built by counting sort. A
//! caller that owns a scratch — the engine owns one per instance — pays zero
//! allocation per solve on the steady path, and the progressive-filling
//! inner loops walk flat arrays instead of chasing per-flow `Vec`s.
//!
//! Two structural improvements over the naive formulation keep the round
//! count low: all capped flows at or below the current bottleneck share are
//! frozen in a single pass (freezing a flow at `c ≤ share` can only *raise*
//! the shares of its resources, so every such cap is a valid next freeze),
//! and the flows crossing the bottleneck resource are enumerated directly
//! from the reverse CSR instead of scanning every flow's route.
//!
//! [`solve_max_min`] remains the pure-function entry point (property tests,
//! the differential oracle) and is deliberately a second, independent
//! implementation — see its docs.

/// Rate assigned to flows that are constrained by nothing at all
/// (empty route, no cap). Finite so downstream arithmetic stays NaN-free.
pub const MAX_RATE: f64 = 1e30;

/// A resource as seen by the solver: just an effective capacity.
#[derive(Debug, Clone, Copy)]
pub struct ResourceInput {
    /// Effective capacity (already adjusted for contention degradation).
    pub capacity: f64,
}

/// A flow as seen by the solver.
#[derive(Debug, Clone)]
pub struct FlowInput {
    /// Indices into the resource slice this flow uses simultaneously.
    pub route: Vec<usize>,
    /// Optional private rate cap.
    pub cap: Option<f64>,
}

/// Reusable structure-of-arrays state for [`SolveScratch::solve`].
///
/// Fill it with [`push_resource`](SolveScratch::push_resource) /
/// [`push_flow`](SolveScratch::push_flow), call `solve`, read
/// [`rates`](SolveScratch::rates). [`clear`](SolveScratch::clear) resets the
/// contents while keeping every allocation.
#[derive(Debug, Default)]
pub struct SolveScratch {
    // Resources.
    capacity: Vec<f64>,
    remaining: Vec<f64>,
    unfrozen_on: Vec<u32>,
    // Flows (SoA).
    flow_cap: Vec<f64>, // f64::INFINITY = uncapped
    frozen: Vec<bool>,
    // Flow → resource routes, CSR.
    route_off: Vec<u32>,
    route_res: Vec<u32>,
    // Resource → flow incidence, CSR (built per solve by counting sort).
    rof_off: Vec<u32>,
    rof_cursor: Vec<u32>,
    rof_flow: Vec<u32>,
    /// Output: one max–min rate per pushed flow, in push order.
    pub rates: Vec<f64>,
    /// When the last solve froze every flow in a single resource round with
    /// no cap binding: that bottleneck's (local) index.
    sole_bottleneck: Option<usize>,
}

impl SolveScratch {
    /// An empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all pushed resources and flows, keeping allocations.
    pub fn clear(&mut self) {
        self.capacity.clear();
        self.flow_cap.clear();
        self.route_off.clear();
        self.route_off.push(0);
        self.route_res.clear();
        self.sole_bottleneck = None;
    }

    /// Register a resource with the given effective capacity; resources are
    /// indexed densely in push order.
    #[inline]
    pub fn push_resource(&mut self, capacity: f64) -> usize {
        self.capacity.push(capacity);
        self.capacity.len() - 1
    }

    /// Register a flow with an optional cap and a route of local resource
    /// indices (duplicates consume multiple shares); flows are indexed
    /// densely in push order.
    #[inline]
    pub fn push_flow<I: IntoIterator<Item = usize>>(&mut self, cap: Option<f64>, route: I) {
        self.push_flow_raw(cap.unwrap_or(f64::INFINITY), route);
    }

    /// As [`push_flow`](Self::push_flow) with the cap already in sentinel
    /// form (`f64::INFINITY` = uncapped), matching the engine's flow table.
    #[inline]
    pub fn push_flow_raw<I: IntoIterator<Item = usize>>(&mut self, cap: f64, route: I) {
        if self.route_off.is_empty() {
            self.route_off.push(0);
        }
        self.flow_cap.push(cap);
        for r in route {
            assert!(r < self.capacity.len(), "route references unknown resource {r}");
            self.route_res.push(r as u32);
        }
        self.route_off.push(self.route_res.len() as u32);
    }

    /// Number of pushed flows.
    #[inline]
    pub fn n_flows(&self) -> usize {
        self.flow_cap.len()
    }

    /// After [`solve`](Self::solve): the single bottleneck resource's local
    /// index, when the solve froze every flow in one resource round with no
    /// cap binding — the precondition for the engine's warm re-fill.
    #[inline]
    pub fn sole_bottleneck(&self) -> Option<usize> {
        self.sole_bottleneck
    }

    #[inline]
    fn route(&self, f: usize) -> std::ops::Range<usize> {
        self.route_off[f] as usize..self.route_off[f + 1] as usize
    }

    /// Compute max–min fair rates for the pushed topology into
    /// [`rates`](Self::rates). Allocation-free once the internal buffers
    /// have grown to the working size.
    pub fn solve(&mut self) {
        let nf = self.flow_cap.len();
        let nr = self.capacity.len();
        self.sole_bottleneck = None;
        self.rates.clear();
        self.rates.resize(nf, 0.0);
        if nf == 0 {
            return;
        }
        self.remaining.clear();
        self.remaining.extend_from_slice(&self.capacity);
        self.unfrozen_on.clear();
        self.unfrozen_on.resize(nr, 0);
        self.frozen.clear();
        self.frozen.resize(nf, false);

        // Reverse CSR by counting sort over the route entries.
        self.rof_off.clear();
        self.rof_off.resize(nr + 1, 0);
        for &r in &self.route_res {
            self.unfrozen_on[r as usize] += 1;
            self.rof_off[r as usize + 1] += 1;
        }
        for r in 0..nr {
            self.rof_off[r + 1] += self.rof_off[r];
        }
        self.rof_cursor.clear();
        self.rof_cursor.extend_from_slice(&self.rof_off[..nr]);
        self.rof_flow.clear();
        self.rof_flow.resize(self.route_res.len(), 0);
        for f in 0..nf {
            for k in self.route(f) {
                let r = self.route_res[k] as usize;
                self.rof_flow[self.rof_cursor[r] as usize] = f as u32;
                self.rof_cursor[r] += 1;
            }
        }

        // Pre-pass: flows with empty routes share nothing — their rate is
        // their cap (or unbounded). Freezing them here keeps the main loop's
        // iteration count proportional to the number of *saturated
        // resources*, not flows; simulators model dedicated per-core compute
        // as exactly such route-less capped flows.
        let mut n_frozen = 0usize;
        for f in 0..nf {
            if self.route_off[f] == self.route_off[f + 1] {
                self.frozen[f] = true;
                n_frozen += 1;
                let c = self.flow_cap[f];
                self.rates[f] = if c.is_finite() { c } else { MAX_RATE };
            }
        }

        let mut resource_rounds = 0usize;
        let mut cap_bound = false;
        let mut last_bottleneck = 0usize;
        while n_frozen < nf {
            // Most-constrained resource.
            let mut best_share = f64::INFINITY;
            let mut best_resource: Option<usize> = None;
            for r in 0..nr {
                let n = self.unfrozen_on[r];
                if n > 0 {
                    let share = self.remaining[r].max(0.0) / f64::from(n);
                    if share < best_share {
                        best_share = share;
                        best_resource = Some(r);
                    }
                }
            }

            // Freeze every unfrozen capped flow at or below the bottleneck
            // share: each such freeze only raises the shares of the
            // resources it releases, so all of them are valid next steps of
            // progressive filling.
            let mut any_cap = false;
            for f in 0..nf {
                if !self.frozen[f] && self.flow_cap[f] <= best_share {
                    let c = self.flow_cap[f];
                    self.frozen[f] = true;
                    n_frozen += 1;
                    self.rates[f] = c;
                    for k in self.route(f) {
                        let r = self.route_res[k] as usize;
                        self.remaining[r] = (self.remaining[r] - c).max(0.0);
                        self.unfrozen_on[r] -= 1;
                    }
                    any_cap = true;
                }
            }
            if any_cap {
                cap_bound = true;
                continue;
            }

            if let Some(r0) = best_resource {
                // Freeze every unfrozen flow crossing the bottleneck,
                // enumerated directly from the reverse CSR.
                resource_rounds += 1;
                last_bottleneck = r0;
                for k in self.rof_off[r0] as usize..self.rof_off[r0 + 1] as usize {
                    let f = self.rof_flow[k] as usize;
                    if self.frozen[f] {
                        continue;
                    }
                    self.frozen[f] = true;
                    n_frozen += 1;
                    self.rates[f] = best_share;
                    for k2 in self.route(f) {
                        let r = self.route_res[k2] as usize;
                        self.remaining[r] = (self.remaining[r] - best_share).max(0.0);
                        self.unfrozen_on[r] -= 1;
                    }
                }
            } else {
                // Remaining flows have no unfrozen resources and no finite
                // caps below infinity: unconstrained (defensive; routed
                // flows always keep their resources' counters non-zero).
                for f in 0..nf {
                    if !self.frozen[f] {
                        self.frozen[f] = true;
                        n_frozen += 1;
                        let c = self.flow_cap[f];
                        self.rates[f] = if c.is_finite() { c } else { MAX_RATE };
                    }
                }
            }
        }

        if !cap_bound && resource_rounds == 1 {
            self.sole_bottleneck = Some(last_bottleneck);
        }
    }
}

/// Compute max–min fair rates.
///
/// `rates` is cleared and filled with one rate per flow, in order.
///
/// This is the pure-function *reference* implementation over plain inputs:
/// a deliberately independent, textbook transcription of progressive
/// filling (one constraint frozen per round), kept separate from the
/// engine's [`SolveScratch`] production solver. The differential oracle
/// compares the engine's incremental rates against this function, so the
/// two implementations cross-check each other; it is also faster than the
/// scratch solver for the one-shot small inputs property tests feed it,
/// since it skips the CSR builds.
///
/// # Panics
/// Panics if a route references a resource index out of bounds.
pub fn solve_max_min(resources: &[ResourceInput], flows: &[FlowInput], rates: &mut Vec<f64>) {
    rates.clear();
    rates.resize(flows.len(), 0.0);
    if flows.is_empty() {
        return;
    }

    let mut remaining: Vec<f64> = resources.iter().map(|r| r.capacity).collect();
    let mut unfrozen_on: Vec<u32> = vec![0; resources.len()];
    for f in flows {
        for &r in &f.route {
            assert!(r < resources.len(), "route references unknown resource {r}");
            unfrozen_on[r] += 1;
        }
    }

    let mut frozen: Vec<bool> = vec![false; flows.len()];
    let mut n_frozen = 0usize;

    // Pre-pass: flows with empty routes share nothing — their rate is their
    // cap (or unbounded).
    for (i, f) in flows.iter().enumerate() {
        if f.route.is_empty() {
            frozen[i] = true;
            n_frozen += 1;
            rates[i] = f.cap.unwrap_or(MAX_RATE);
        }
    }

    while n_frozen < flows.len() {
        // Most-constrained resource.
        let mut best_share = f64::INFINITY;
        let mut best_resource: Option<usize> = None;
        for (r, &n) in unfrozen_on.iter().enumerate() {
            if n > 0 {
                let share = (remaining[r].max(0.0)) / f64::from(n);
                if share < best_share {
                    best_share = share;
                    best_resource = Some(r);
                }
            }
        }
        // Most-constrained capped flow.
        let mut best_cap = f64::INFINITY;
        let mut best_capped: Option<usize> = None;
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] {
                if let Some(c) = f.cap {
                    if c < best_cap {
                        best_cap = c;
                        best_capped = Some(i);
                    }
                }
            }
        }

        if let (Some(i), true) = (best_capped, best_cap <= best_share) {
            // Freeze the single most-constrained capped flow at its cap.
            frozen[i] = true;
            n_frozen += 1;
            rates[i] = best_cap;
            for &r in &flows[i].route {
                remaining[r] = (remaining[r] - best_cap).max(0.0);
                unfrozen_on[r] -= 1;
            }
        } else if let Some(r0) = best_resource {
            // Freeze every unfrozen flow crossing the bottleneck resource.
            for i in 0..flows.len() {
                if frozen[i] || !flows[i].route.contains(&r0) {
                    continue;
                }
                frozen[i] = true;
                n_frozen += 1;
                rates[i] = best_share;
                for &r in &flows[i].route {
                    remaining[r] = (remaining[r] - best_share).max(0.0);
                    unfrozen_on[r] -= 1;
                }
            }
        } else {
            // Remaining flows have no resources and no caps: unconstrained.
            for i in 0..flows.len() {
                if !frozen[i] {
                    frozen[i] = true;
                    n_frozen += 1;
                    rates[i] = MAX_RATE;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(resources: &[f64], flows: &[(&[usize], Option<f64>)]) -> Vec<f64> {
        let rs: Vec<ResourceInput> =
            resources.iter().map(|&c| ResourceInput { capacity: c }).collect();
        let fs: Vec<FlowInput> = flows
            .iter()
            .map(|(route, cap)| FlowInput { route: route.to_vec(), cap: *cap })
            .collect();
        let mut rates = Vec::new();
        solve_max_min(&rs, &fs, &mut rates);
        rates
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let rates = solve(&[100.0], &[(&[0], None)]);
        assert_eq!(rates, vec![100.0]);
    }

    #[test]
    fn equal_flows_split_evenly() {
        let rates = solve(&[90.0], &[(&[0], None), (&[0], None), (&[0], None)]);
        assert_eq!(rates, vec![30.0, 30.0, 30.0]);
    }

    #[test]
    fn cap_binds_before_fair_share() {
        let rates = solve(&[100.0], &[(&[0], Some(10.0)), (&[0], None)]);
        assert_eq!(rates, vec![10.0, 90.0]);
    }

    #[test]
    fn cap_above_fair_share_is_inert() {
        let rates = solve(&[100.0], &[(&[0], Some(80.0)), (&[0], None)]);
        assert_eq!(rates, vec![50.0, 50.0]);
    }

    #[test]
    fn multi_resource_flow_is_bound_by_tightest() {
        // Flow 0 crosses both resources; resource 1 is tight.
        let rates = solve(&[100.0, 10.0], &[(&[0, 1], None), (&[0], None)]);
        assert_eq!(rates, vec![10.0, 90.0]);
    }

    #[test]
    fn classic_three_flow_line_network() {
        // Two links of capacity 10; flow A uses both, flows B and C one each.
        // Max–min: A = 5, B = 5, C = 5.
        let rates = solve(&[10.0, 10.0], &[(&[0, 1], None), (&[0], None), (&[1], None)]);
        assert_eq!(rates, vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn asymmetric_line_network() {
        // Link 0: cap 10 shared by A and B; link 1: cap 100 shared by A and C.
        // A and B get 5 from link 0; C then gets 95 from link 1.
        let rates = solve(&[10.0, 100.0], &[(&[0, 1], None), (&[0], None), (&[1], None)]);
        assert_eq!(rates, vec![5.0, 5.0, 95.0]);
    }

    #[test]
    fn unconstrained_flow_gets_max_rate() {
        let rates = solve(&[], &[(&[], None)]);
        assert_eq!(rates, vec![MAX_RATE]);
    }

    #[test]
    fn capped_routeless_flow_gets_cap() {
        let rates = solve(&[], &[(&[], Some(3.0))]);
        assert_eq!(rates, vec![3.0]);
    }

    #[test]
    fn no_flows_is_fine() {
        let rates = solve(&[10.0], &[]);
        assert!(rates.is_empty());
    }

    #[test]
    fn repeated_resource_in_route_counts_twice() {
        // Pathological but must not panic: flow listed twice on a resource
        // consumes two shares.
        let rates = solve(&[10.0], &[(&[0, 0], None)]);
        assert_eq!(rates, vec![5.0]);
    }

    #[test]
    fn equal_caps_freeze_together() {
        // Four flows with the same binding cap on one resource: all get the
        // cap, in one batched cap round.
        let rates = solve(
            &[100.0],
            &[(&[0], Some(5.0)), (&[0], Some(5.0)), (&[0], Some(5.0)), (&[0], Some(5.0))],
        );
        assert_eq!(rates, vec![5.0; 4]);
    }

    #[test]
    fn scratch_reuse_matches_fresh_solves() {
        let mut scratch = SolveScratch::new();
        for trial in 0..3 {
            scratch.clear();
            scratch.push_resource(10.0 + trial as f64);
            scratch.push_resource(100.0);
            scratch.push_flow(None, [0usize, 1]);
            scratch.push_flow(Some(2.0), [0usize]);
            scratch.push_flow(None, [1usize]);
            scratch.solve();
            let mut expected = Vec::new();
            solve_max_min(
                &[
                    ResourceInput { capacity: 10.0 + trial as f64 },
                    ResourceInput { capacity: 100.0 },
                ],
                &[
                    FlowInput { route: vec![0, 1], cap: None },
                    FlowInput { route: vec![0], cap: Some(2.0) },
                    FlowInput { route: vec![1], cap: None },
                ],
                &mut expected,
            );
            assert_eq!(scratch.rates, expected, "trial {trial}");
        }
    }

    #[test]
    fn sole_bottleneck_reported_only_for_single_round_uncapped_solves() {
        let mut s = SolveScratch::new();
        s.clear();
        s.push_resource(10.0);
        s.push_resource(1000.0);
        s.push_flow(None, [0usize, 1]);
        s.push_flow(None, [0usize]);
        s.solve();
        assert_eq!(s.sole_bottleneck(), Some(0), "everything froze on resource 0");

        // A binding cap disqualifies the warm precondition.
        s.clear();
        s.push_resource(10.0);
        s.push_flow(Some(1.0), [0usize]);
        s.push_flow(None, [0usize]);
        s.solve();
        assert_eq!(s.sole_bottleneck(), None);

        // Two bottleneck rounds disqualify it too.
        s.clear();
        s.push_resource(10.0);
        s.push_resource(12.0);
        s.push_flow(None, [0usize]);
        s.push_flow(None, [1usize]);
        s.solve();
        assert_eq!(s.sole_bottleneck(), None);
    }

    fn assert_feasible(resources: &[f64], flows: &[(&[usize], Option<f64>)], rates: &[f64]) {
        for (r, &cap) in resources.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(rates)
                .map(|((route, _), &rate)| route.iter().filter(|&&x| x == r).count() as f64 * rate)
                .sum();
            assert!(
                used <= cap * (1.0 + 1e-9) + 1e-9,
                "resource {r} oversubscribed: {used} > {cap}"
            );
        }
        for ((_, cap), &rate) in flows.iter().zip(rates) {
            if let Some(c) = cap {
                assert!(rate <= c * (1.0 + 1e-9), "cap violated");
            }
            assert!(rate >= 0.0 && rate.is_finite());
        }
    }

    #[test]
    fn feasibility_on_fixed_mesh() {
        let resources = [10.0, 20.0, 5.0];
        let flows: Vec<(&[usize], Option<f64>)> = vec![
            (&[0, 1], None),
            (&[1, 2], Some(2.0)),
            (&[0], None),
            (&[2], None),
            (&[0, 1, 2], None),
        ];
        let rates = solve(&resources, &flows);
        assert_feasible(&resources, &flows, &rates);
    }

    #[test]
    fn bottleneck_resource_is_saturated() {
        let resources = [10.0];
        let flows: Vec<(&[usize], Option<f64>)> = vec![(&[0], None), (&[0], None)];
        let rates = solve(&resources, &flows);
        let used: f64 = rates.iter().sum();
        assert!((used - 10.0).abs() < 1e-9);
    }
}
