//! Progressive-filling max–min fair bandwidth sharing.
//!
//! This is the fluid allocation at the core of SimGrid-style flow-level
//! models: given a set of resources with (effective) capacities and a set of
//! flows, each using a subset of the resources simultaneously and optionally
//! carrying a private rate cap, compute the max–min fair rate vector.
//!
//! The algorithm repeatedly finds the most constrained element — either a
//! resource (its remaining capacity divided by its number of unfrozen flows)
//! or a capped flow — freezes the corresponding flows at that rate, subtracts
//! the frozen bandwidth from every resource on their routes, and iterates
//! until all flows are frozen.
//!
//! The solver is a pure function over plain inputs so it can be exercised
//! directly by property tests (feasibility, saturation, bottleneck fairness).

/// Rate assigned to flows that are constrained by nothing at all
/// (empty route, no cap). Finite so downstream arithmetic stays NaN-free.
pub const MAX_RATE: f64 = 1e30;

/// A resource as seen by the solver: just an effective capacity.
#[derive(Debug, Clone, Copy)]
pub struct ResourceInput {
    /// Effective capacity (already adjusted for contention degradation).
    pub capacity: f64,
}

/// A flow as seen by the solver.
#[derive(Debug, Clone)]
pub struct FlowInput {
    /// Indices into the resource slice this flow uses simultaneously.
    pub route: Vec<usize>,
    /// Optional private rate cap.
    pub cap: Option<f64>,
}

/// Compute max–min fair rates.
///
/// `rates` is cleared and filled with one rate per flow, in order.
///
/// # Panics
/// Panics if a route references a resource index out of bounds.
pub fn solve_max_min(resources: &[ResourceInput], flows: &[FlowInput], rates: &mut Vec<f64>) {
    rates.clear();
    rates.resize(flows.len(), 0.0);
    if flows.is_empty() {
        return;
    }

    let mut remaining: Vec<f64> = resources.iter().map(|r| r.capacity).collect();
    let mut unfrozen_on: Vec<u32> = vec![0; resources.len()];
    for f in flows {
        for &r in &f.route {
            assert!(r < resources.len(), "route references unknown resource {r}");
            unfrozen_on[r] += 1;
        }
    }

    let mut frozen: Vec<bool> = vec![false; flows.len()];
    let mut n_frozen = 0usize;

    // Pre-pass: flows with empty routes share nothing — their rate is their
    // cap (or unbounded). Freezing them here keeps the main loop's iteration
    // count proportional to the number of *saturated resources*, not flows;
    // this matters because simulators model dedicated per-core compute as
    // exactly such route-less capped flows (one per running job).
    for (i, f) in flows.iter().enumerate() {
        if f.route.is_empty() {
            frozen[i] = true;
            n_frozen += 1;
            rates[i] = f.cap.unwrap_or(MAX_RATE);
        }
    }

    while n_frozen < flows.len() {
        // Most-constrained resource.
        let mut best_share = f64::INFINITY;
        let mut best_resource: Option<usize> = None;
        for (r, &n) in unfrozen_on.iter().enumerate() {
            if n > 0 {
                let share = (remaining[r].max(0.0)) / n as f64;
                if share < best_share {
                    best_share = share;
                    best_resource = Some(r);
                }
            }
        }
        // Most-constrained capped flow.
        let mut best_cap = f64::INFINITY;
        let mut best_capped: Option<usize> = None;
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] {
                if let Some(c) = f.cap {
                    if c < best_cap {
                        best_cap = c;
                        best_capped = Some(i);
                    }
                }
            }
        }

        if let (Some(i), true) = (best_capped, best_cap <= best_share) {
            // Freeze the single most-constrained capped flow at its cap.
            frozen[i] = true;
            n_frozen += 1;
            rates[i] = best_cap;
            for &r in &flows[i].route {
                remaining[r] = (remaining[r] - best_cap).max(0.0);
                unfrozen_on[r] -= 1;
            }
        } else if let Some(r0) = best_resource {
            // Freeze every unfrozen flow crossing the bottleneck resource.
            for i in 0..flows.len() {
                if frozen[i] || !flows[i].route.contains(&r0) {
                    continue;
                }
                frozen[i] = true;
                n_frozen += 1;
                rates[i] = best_share;
                for &r in &flows[i].route {
                    remaining[r] = (remaining[r] - best_share).max(0.0);
                    unfrozen_on[r] -= 1;
                }
            }
        } else {
            // Remaining flows have no resources and no caps: unconstrained.
            for i in 0..flows.len() {
                if !frozen[i] {
                    frozen[i] = true;
                    n_frozen += 1;
                    rates[i] = MAX_RATE;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(resources: &[f64], flows: &[(&[usize], Option<f64>)]) -> Vec<f64> {
        let rs: Vec<ResourceInput> =
            resources.iter().map(|&c| ResourceInput { capacity: c }).collect();
        let fs: Vec<FlowInput> = flows
            .iter()
            .map(|(route, cap)| FlowInput { route: route.to_vec(), cap: *cap })
            .collect();
        let mut rates = Vec::new();
        solve_max_min(&rs, &fs, &mut rates);
        rates
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let rates = solve(&[100.0], &[(&[0], None)]);
        assert_eq!(rates, vec![100.0]);
    }

    #[test]
    fn equal_flows_split_evenly() {
        let rates = solve(&[90.0], &[(&[0], None), (&[0], None), (&[0], None)]);
        assert_eq!(rates, vec![30.0, 30.0, 30.0]);
    }

    #[test]
    fn cap_binds_before_fair_share() {
        let rates = solve(&[100.0], &[(&[0], Some(10.0)), (&[0], None)]);
        assert_eq!(rates, vec![10.0, 90.0]);
    }

    #[test]
    fn cap_above_fair_share_is_inert() {
        let rates = solve(&[100.0], &[(&[0], Some(80.0)), (&[0], None)]);
        assert_eq!(rates, vec![50.0, 50.0]);
    }

    #[test]
    fn multi_resource_flow_is_bound_by_tightest() {
        // Flow 0 crosses both resources; resource 1 is tight.
        let rates = solve(&[100.0, 10.0], &[(&[0, 1], None), (&[0], None)]);
        assert_eq!(rates, vec![10.0, 90.0]);
    }

    #[test]
    fn classic_three_flow_line_network() {
        // Two links of capacity 10; flow A uses both, flows B and C one each.
        // Max–min: A = 5, B = 5, C = 5.
        let rates = solve(&[10.0, 10.0], &[(&[0, 1], None), (&[0], None), (&[1], None)]);
        assert_eq!(rates, vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn asymmetric_line_network() {
        // Link 0: cap 10 shared by A and B; link 1: cap 100 shared by A and C.
        // A and B get 5 from link 0; C then gets 95 from link 1.
        let rates = solve(&[10.0, 100.0], &[(&[0, 1], None), (&[0], None), (&[1], None)]);
        assert_eq!(rates, vec![5.0, 5.0, 95.0]);
    }

    #[test]
    fn unconstrained_flow_gets_max_rate() {
        let rates = solve(&[], &[(&[], None)]);
        assert_eq!(rates, vec![MAX_RATE]);
    }

    #[test]
    fn capped_routeless_flow_gets_cap() {
        let rates = solve(&[], &[(&[], Some(3.0))]);
        assert_eq!(rates, vec![3.0]);
    }

    #[test]
    fn no_flows_is_fine() {
        let rates = solve(&[10.0], &[]);
        assert!(rates.is_empty());
    }

    #[test]
    fn repeated_resource_in_route_counts_twice() {
        // Pathological but must not panic: flow listed twice on a resource
        // consumes two shares.
        let rates = solve(&[10.0], &[(&[0, 0], None)]);
        assert_eq!(rates, vec![5.0]);
    }

    fn assert_feasible(resources: &[f64], flows: &[(&[usize], Option<f64>)], rates: &[f64]) {
        for (r, &cap) in resources.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(rates)
                .map(|((route, _), &rate)| route.iter().filter(|&&x| x == r).count() as f64 * rate)
                .sum();
            assert!(
                used <= cap * (1.0 + 1e-9) + 1e-9,
                "resource {r} oversubscribed: {used} > {cap}"
            );
        }
        for ((_, cap), &rate) in flows.iter().zip(rates) {
            if let Some(c) = cap {
                assert!(rate <= c * (1.0 + 1e-9), "cap violated");
            }
            assert!(rate >= 0.0 && rate.is_finite());
        }
    }

    #[test]
    fn feasibility_on_fixed_mesh() {
        let resources = [10.0, 20.0, 5.0];
        let flows: Vec<(&[usize], Option<f64>)> = vec![
            (&[0, 1], None),
            (&[1, 2], Some(2.0)),
            (&[0], None),
            (&[2], None),
            (&[0, 1, 2], None),
        ];
        let rates = solve(&resources, &flows);
        assert_feasible(&resources, &flows, &rates);
    }

    #[test]
    fn bottleneck_resource_is_saturated() {
        let resources = [10.0];
        let flows: Vec<(&[usize], Option<f64>)> = vec![(&[0], None), (&[0], None)];
        let rates = solve(&resources, &flows);
        let used: f64 = rates.iter().sum();
        assert!((used - 10.0).abs() < 1e-9);
    }
}
