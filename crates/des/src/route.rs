//! Inline small-route storage.
//!
//! Nearly every flow the simulators start routes through at most two
//! resources (a storage service, or WAN + node NIC), and compute flows
//! route through none. Routes are therefore stored inline up to
//! [`Route::INLINE`] hops and only spill to the heap beyond that, so the
//! steady-state start/complete/reissue cycle of pipelined chunk streams
//! allocates nothing — at hundreds of thousands of flows per simulation
//! the per-flow `Vec` this replaces dominated the start path. The type is
//! kept at 24 bytes (the size of a bare `Vec` header) so the flow table's
//! streaming growth in cold builds costs no more than it used to.

use crate::ids::ResourceId;

/// A flow's route: the resources it uses simultaneously, in caller order
/// (duplicates allowed — a flow listed twice consumes two shares).
#[derive(Debug, Clone)]
pub(crate) struct Route {
    len: u8,
    inline: [ResourceId; Route::INLINE],
    /// Heap storage for routes longer than [`Route::INLINE`] (rare). Boxed
    /// `Vec` rather than boxed slice: the thin pointer keeps the whole
    /// type at 24 bytes, which a fat `Box<[_]>` pointer would not.
    #[allow(clippy::box_collection)]
    spill: Option<Box<Vec<ResourceId>>>,
}

impl Default for Route {
    fn default() -> Self {
        Self { len: 0, inline: [ResourceId(0); Route::INLINE], spill: None }
    }
}

impl Route {
    /// Hops stored inline before spilling to the heap.
    pub const INLINE: usize = 3;

    /// A route copied from a slice of hops.
    #[inline]
    pub fn from_slice(hops: &[ResourceId]) -> Self {
        let mut r = Route::default();
        r.assign(hops);
        r
    }

    /// Replace the contents.
    #[inline]
    pub fn assign(&mut self, hops: &[ResourceId]) {
        if hops.len() <= Self::INLINE {
            self.inline[..hops.len()].copy_from_slice(hops);
            self.spill = None;
        } else {
            self.spill = Some(Box::new(hops.to_vec()));
        }
        self.len = u8::try_from(hops.len()).expect("route too long");
    }

    /// The hops as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[ResourceId] {
        if self.len as usize <= Self::INLINE {
            &self.inline[..self.len as usize]
        } else {
            self.spill.as_deref().expect("spilled route has storage").as_slice()
        }
    }

    /// Number of hops (counting duplicates).
    #[inline]
    #[allow(dead_code)] // natural companion to `is_empty`; exercised in tests
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the route is empty (a route-less compute flow).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl PartialEq for Route {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Route {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_stays_vec_header_sized() {
        assert!(std::mem::size_of::<Route>() <= std::mem::size_of::<Vec<ResourceId>>());
    }

    #[test]
    fn inline_routes_round_trip() {
        for n in 0..=Route::INLINE {
            let hops: Vec<ResourceId> = (0..n as u32).map(ResourceId).collect();
            let r = Route::from_slice(&hops);
            assert_eq!(r.as_slice(), &hops[..]);
            assert_eq!(r.len(), n);
            assert_eq!(r.is_empty(), n == 0);
        }
    }

    #[test]
    fn long_routes_spill() {
        let hops: Vec<ResourceId> = (0..9u32).map(ResourceId).collect();
        let r = Route::from_slice(&hops);
        assert_eq!(r.as_slice(), &hops[..]);
        assert_eq!(r.len(), 9);
    }

    #[test]
    fn equality_ignores_stale_inline_garbage() {
        let mut a = Route::from_slice(&[ResourceId(1), ResourceId(2), ResourceId(3)]);
        a.assign(&[ResourceId(1)]);
        let b = Route::from_slice(&[ResourceId(1)]);
        assert_eq!(a, b);
        assert_ne!(a, Route::from_slice(&[ResourceId(2)]));
    }

    #[test]
    fn assign_shrinks_from_spill() {
        let long: Vec<ResourceId> = (0..8u32).map(ResourceId).collect();
        let mut r = Route::from_slice(&long);
        r.assign(&[ResourceId(7)]);
        assert_eq!(r.as_slice(), &[ResourceId(7)]);
        let taken = std::mem::take(&mut r);
        assert_eq!(taken.as_slice(), &[ResourceId(7)]);
        assert!(r.is_empty());
    }
}
