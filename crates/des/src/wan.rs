//! Flow-level WAN backend: propagation delay, windowed congestion control,
//! and a FIFO QDisc bottleneck with queueing-delay feedback.
//!
//! This is the minim-style flow-level model recast onto the fluid engine.
//! Each WAN-annotated flow carries a one-way propagation delay `d` and a
//! congestion window `w` (bytes). The shared bottleneck is modelled as an
//! *algebraic* FIFO queue: with bottleneck capacity `C` and the windowed
//! flows' bandwidth-delay product `BDP = 2·C·mean(dᵢ)`, the standing queue
//! is
//!
//! ```text
//! Q = max(0, Σ wᵢ − BDP)        (bytes)
//! q = Q / C                     (queueing delay, seconds)
//! ```
//!
//! and a flow's effective rate cap is its window paced over its RTT,
//! `w / (2d + q)` — the classic window-limited sender. The max–min solver
//! then allocates *under* these caps, so link sharing, cross-traffic from
//! unwindowed flows, and multi-resource routes all still resolve through
//! the engine's component-scoped machinery. Queueing delay feeds back into
//! effective rates purely algebraically: no per-packet events, so the event
//! count stays O(chunks), not O(bytes).
//!
//! ## Congestion control
//!
//! Windows evolve by AIMD at settle instants (the engine's natural clock:
//! every event boundary). With elapsed time `dt` since the flow's last
//! update:
//!
//! * `q > mark_threshold` → multiplicative decrease, `w ← w·(1 − gain/2)`
//!   (the DCTCP-shaped cut; `gain = 1` halves the window), at most one cut
//!   per settle instant;
//! * otherwise → additive increase, `w ← w + additive_increase·dt/rtt`
//!   (one `additive_increase` per RTT of smooth time).
//!
//! Updates are event-driven rather than per-RTT — between events no flow
//! completes and the allocation is constant, so evolving windows there
//! would be unobservable anyway.
//!
//! ## Degeneracy guarantee
//!
//! With `window: None` (unbounded) every flow's effective cap is exactly
//! its static cap and no window ever evolves; with propagation delay 0 no
//! extra latency is added. Under that configuration the model's hooks
//! return the identical floats the [`crate::MaxMinModel`] hooks return, the
//! engine takes the identical branches (swap fast path, weak marks, warm
//! refills), and traces are **bit-identical** to max–min. The integration
//! suite pins this across the whole scenario registry.

use crate::ids::ResourceId;
use crate::model::{BandwidthModel, ModelCounters, WanSpec};

/// Parameters of the flow-level WAN model ([`crate::BandwidthModelConfig::FlowLevel`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowLevelParams {
    /// Initial congestion window, bytes. `None` = unbounded (windowing
    /// disabled — the degenerate configuration).
    pub window: Option<f64>,
    /// Multiplicative-decrease gain in `(0, 2)`: a congestion signal cuts
    /// the window by `gain/2` (1.0 halves it, DCTCP-style fractions cut
    /// less).
    pub gain: f64,
    /// Additive increase, bytes per RTT of uncongested smooth time.
    pub additive_increase: f64,
    /// Queueing delay (seconds) above which the bottleneck marks
    /// congestion.
    pub mark_threshold: f64,
    /// Floor the window never decreases below, bytes.
    pub min_window: f64,
}

impl Default for FlowLevelParams {
    fn default() -> Self {
        Self {
            window: Some(2e6),      // 2 MB initial window
            gain: 1.0,              // classic halving
            additive_increase: 1e5, // 100 kB per RTT
            mark_threshold: 5e-3,   // 5 ms of standing queue
            min_window: 1e4,        // 10 kB floor
        }
    }
}

impl FlowLevelParams {
    /// The degenerate configuration: unbounded window, used with zero
    /// propagation delay it reproduces max–min bit-for-bit.
    pub fn degenerate() -> Self {
        Self { window: None, ..Self::default() }
    }

    /// Panic unless the parameters are valid.
    pub fn validate(&self) {
        if let Some(w) = self.window {
            assert!(w.is_finite() && w > 0.0, "initial window must be positive");
        }
        assert!(self.gain > 0.0 && self.gain < 2.0, "gain must lie in (0, 2), got {}", self.gain);
        assert!(
            self.additive_increase.is_finite() && self.additive_increase >= 0.0,
            "additive increase must be non-negative"
        );
        assert!(
            self.mark_threshold.is_finite() && self.mark_threshold >= 0.0,
            "mark threshold must be non-negative"
        );
        assert!(
            self.min_window.is_finite() && self.min_window > 0.0,
            "min window must be positive"
        );
    }
}

/// Per-bottleneck aggregate state (one per distinct WAN resource; found by
/// linear scan — platforms have a handful of WAN links at most).
#[derive(Debug, Clone)]
struct Btl {
    resource: ResourceId,
    /// Base capacity, bytes/s (captured at first registration).
    cap: f64,
    /// Σ window over windowed flows queued here.
    sum_w: f64,
    /// Σ propagation delay over windowed flows (for the mean in the BDP).
    sum_delay: f64,
    /// Number of windowed flows queued here.
    n_windowed: u32,
}

impl Btl {
    /// Standing queueing delay `q = max(0, Σw − 2·C·mean(d)) / C`, seconds.
    fn queueing_delay(&self) -> f64 {
        if self.n_windowed == 0 || self.cap <= 0.0 {
            return 0.0;
        }
        let mean_d = self.sum_delay / f64::from(self.n_windowed);
        let bdp = 2.0 * self.cap * mean_d;
        (self.sum_w - bdp).max(0.0) / self.cap
    }
}

/// Per-flow WAN state, indexed by engine flow-table slot.
#[derive(Debug, Clone, Copy)]
struct WanFlow {
    delay: f64,
    /// Current congestion window, bytes (`f64::INFINITY` when unbounded).
    window: f64,
    /// Whether windowing is active (false = degenerate, cap passes through).
    windowed: bool,
    /// Index into `btls`.
    btl: u32,
    /// Engine time of the last AIMD step for this flow.
    updated_at: f64,
    /// Index into `active` (for O(1) deregistration).
    pos: u32,
}

/// The flow-level WAN bandwidth model. See the module docs.
#[derive(Debug)]
pub struct FlowLevelWan {
    params: FlowLevelParams,
    /// Slot-indexed per-flow state (model-side, so the engine's hot
    /// 80-byte flow table is untouched).
    entries: Vec<Option<WanFlow>>,
    /// Dense list of registered slots, iterated by AIMD updates.
    active: Vec<u32>,
    btls: Vec<Btl>,
    /// Scratch: per-bottleneck queueing delay snapshot for one update pass.
    q_snapshot: Vec<f64>,
    /// Scratch: per-bottleneck Σ window delta of one update pass.
    w_delta: Vec<f64>,
    /// Last instant windows were evolved (gates one update per instant).
    last_evolve: f64,
    n_windowed: usize,
    counters: ModelCounters,
}

impl FlowLevelWan {
    /// A fresh model with the given parameters.
    pub fn new(params: FlowLevelParams) -> Self {
        params.validate();
        Self {
            params,
            entries: Vec::new(),
            active: Vec::new(),
            btls: Vec::new(),
            q_snapshot: Vec::new(),
            w_delta: Vec::new(),
            last_evolve: 0.0,
            n_windowed: 0,
            counters: ModelCounters::default(),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &FlowLevelParams {
        &self.params
    }

    fn btl_index(&mut self, resource: ResourceId, cap: f64) -> u32 {
        if let Some(i) = self.btls.iter().position(|b| b.resource == resource) {
            return i as u32;
        }
        self.btls.push(Btl { resource, cap, sum_w: 0.0, sum_delay: 0.0, n_windowed: 0 });
        (self.btls.len() - 1) as u32
    }
}

impl BandwidthModel for FlowLevelWan {
    fn name(&self) -> &'static str {
        "flow-level"
    }

    #[inline]
    fn extra_latency(&self, delay: f64) -> f64 {
        delay
    }

    fn on_start(&mut self, slot: usize, wan: WanSpec, bottleneck_cap: f64, now: f64) {
        debug_assert!(wan.delay >= 0.0, "propagation delay must be non-negative");
        let btl = self.btl_index(wan.bottleneck, bottleneck_cap);
        let windowed = self.params.window.is_some();
        let window = self.params.window.unwrap_or(f64::INFINITY);
        if self.entries.len() <= slot {
            self.entries.resize(slot + 1, None);
        }
        debug_assert!(self.entries[slot].is_none(), "slot registered twice");
        let pos = self.active.len() as u32;
        self.active.push(slot as u32);
        self.entries[slot] =
            Some(WanFlow { delay: wan.delay, window, windowed, btl, updated_at: now, pos });
        if windowed {
            let b = &mut self.btls[btl as usize];
            b.sum_w += window;
            b.sum_delay += wan.delay;
            b.n_windowed += 1;
            self.n_windowed += 1;
        }
        self.counters.wan_flows += 1;
    }

    fn on_end(&mut self, slot: usize) {
        let Some(e) = self.entries.get_mut(slot).and_then(Option::take) else {
            return;
        };
        if e.windowed {
            let b = &mut self.btls[e.btl as usize];
            b.n_windowed -= 1;
            if b.n_windowed == 0 {
                // Kill accumulated float drift whenever the queue empties.
                b.sum_w = 0.0;
                b.sum_delay = 0.0;
            } else {
                b.sum_w -= e.window;
                b.sum_delay -= e.delay;
            }
            self.n_windowed -= 1;
        }
        let pos = e.pos as usize;
        self.active.swap_remove(pos);
        if pos < self.active.len() {
            let moved = self.active[pos] as usize;
            self.entries[moved].as_mut().expect("active slot registered").pos = pos as u32;
        }
    }

    #[inline]
    fn is_dynamic(&self, slot: usize) -> bool {
        matches!(self.entries.get(slot), Some(Some(e)) if e.windowed)
    }

    #[inline]
    fn effective_cap(&self, slot: usize, base: f64) -> f64 {
        match self.entries.get(slot) {
            Some(Some(e)) if e.windowed => {
                let q = self.btls[e.btl as usize].queueing_delay();
                let rtt = 2.0 * e.delay + q;
                if rtt > 0.0 {
                    base.min(e.window / rtt)
                } else {
                    base
                }
            }
            _ => base,
        }
    }

    #[inline]
    fn wants_window_update(&self, now: f64) -> bool {
        self.n_windowed > 0 && now > self.last_evolve
    }

    fn update_windows(&mut self, now: f64, changed: &mut Vec<u32>) {
        if self.n_windowed == 0 || now <= self.last_evolve {
            return;
        }
        self.last_evolve = now;
        // Phase 1: snapshot every bottleneck's queueing delay, so each
        // flow's step sees the same pre-update queue regardless of
        // iteration order.
        self.q_snapshot.clear();
        self.w_delta.clear();
        for b in &self.btls {
            self.q_snapshot.push(b.queueing_delay());
            self.w_delta.push(0.0);
        }
        // Phase 2: per-flow AIMD against the snapshot.
        for i in 0..self.active.len() {
            let slot = self.active[i] as usize;
            let e = self.entries[slot].as_mut().expect("active slot registered");
            if !e.windowed {
                continue;
            }
            let dt = now - e.updated_at;
            e.updated_at = now;
            if dt <= 0.0 {
                continue;
            }
            let q = self.q_snapshot[e.btl as usize];
            let rtt = (2.0 * e.delay + q).max(1e-9);
            let w_new = if q > self.params.mark_threshold {
                (e.window * (1.0 - self.params.gain / 2.0)).max(self.params.min_window)
            } else {
                e.window + self.params.additive_increase * dt / rtt
            };
            if w_new != e.window {
                if w_new < e.window {
                    self.counters.wan_window_cuts += 1;
                } else {
                    self.counters.wan_window_bumps += 1;
                }
                self.w_delta[e.btl as usize] += w_new - e.window;
                e.window = w_new;
                changed.push(slot as u32);
            }
        }
        // Phase 3: fold the window deltas into the bottleneck aggregates.
        for (b, &d) in self.btls.iter_mut().zip(&self.w_delta) {
            if d != 0.0 {
                b.sum_w += d;
            }
        }
    }

    #[inline]
    fn counters(&self) -> ModelCounters {
        self.counters
    }

    fn reset(&mut self) {
        self.entries.clear();
        self.active.clear();
        self.btls.clear();
        self.last_evolve = 0.0;
        self.n_windowed = 0;
        self.counters = ModelCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wan(delay: f64) -> WanSpec {
        WanSpec { delay, bottleneck: ResourceId(0) }
    }

    #[test]
    fn degenerate_params_pass_caps_through() {
        let mut m = FlowLevelWan::new(FlowLevelParams::degenerate());
        m.on_start(0, wan(0.0), 100.0, 0.0);
        assert_eq!(m.extra_latency(0.0), 0.0);
        assert_eq!(m.effective_cap(0, 42.0), 42.0);
        assert_eq!(m.effective_cap(0, f64::INFINITY), f64::INFINITY);
        assert!(!m.is_dynamic(0));
        assert!(!m.wants_window_update(5.0), "no windowed flows, nothing to evolve");
        assert_eq!(m.counters().wan_flows, 1);
    }

    #[test]
    fn windowed_cap_is_window_over_rtt() {
        // One flow, window 1e6 B, delay 10 ms, capacity 1e9 B/s:
        // BDP = 2*1e9*0.01 = 2e7 > 1e6 => q = 0, cap = 1e6/0.02 = 5e7.
        let params = FlowLevelParams { window: Some(1e6), ..FlowLevelParams::default() };
        let mut m = FlowLevelWan::new(params);
        m.on_start(0, wan(0.01), 1e9, 0.0);
        assert!(m.is_dynamic(0));
        let cap = m.effective_cap(0, f64::INFINITY);
        assert!((cap - 5e7).abs() < 1e-3, "cap {cap}");
    }

    #[test]
    fn standing_queue_feeds_back_into_rtt() {
        // Two flows with zero delay: BDP = 0, so q = (w1+w2)/C and each cap
        // is w / q = w*C/(w1+w2) — the queue paces the aggregate to C.
        let params = FlowLevelParams { window: Some(4e6), ..FlowLevelParams::default() };
        let mut m = FlowLevelWan::new(params);
        m.on_start(0, wan(0.0), 1e8, 0.0);
        m.on_start(1, wan(0.0), 1e8, 0.0);
        let q = 8e6 / 1e8; // 80 ms
        let cap = m.effective_cap(0, f64::INFINITY);
        assert!((cap - 4e6 / q).abs() < 1e-3, "cap {cap}");
        // Both flows together exactly fill the bottleneck.
        assert!((2.0 * cap - 1e8).abs() < 1e-3);
    }

    #[test]
    fn aimd_cuts_under_congestion_and_grows_when_idle() {
        let params = FlowLevelParams {
            window: Some(1e7),
            gain: 1.0,
            additive_increase: 1e5,
            mark_threshold: 5e-3,
            min_window: 1e4,
        };
        let mut m = FlowLevelWan::new(params);
        // Congested: zero delay, so q = 1e7/1e8 = 100 ms > 5 ms threshold.
        m.on_start(0, wan(0.0), 1e8, 0.0);
        assert!(m.wants_window_update(1.0));
        let mut changed = Vec::new();
        m.update_windows(1.0, &mut changed);
        assert_eq!(changed, vec![0]);
        let cap = m.effective_cap(0, f64::INFINITY);
        // Window halved to 5e6; q = 5e6/1e8 = 50 ms; cap = 5e6/0.05 = 1e8.
        assert!((cap - 1e8).abs() < 1e-3, "cap {cap}");
        assert_eq!(m.counters().wan_window_cuts, 1);

        // Uncongested: large delay makes the BDP dwarf the window.
        let mut m2 = FlowLevelWan::new(FlowLevelParams {
            window: Some(1e5),
            additive_increase: 1e5,
            ..FlowLevelParams::default()
        });
        m2.on_start(0, wan(0.05), 1e9, 0.0);
        let before = m2.effective_cap(0, f64::INFINITY);
        let mut changed = Vec::new();
        m2.update_windows(0.1, &mut changed); // one RTT of smooth time
        assert_eq!(changed, vec![0]);
        let after = m2.effective_cap(0, f64::INFINITY);
        assert!(after > before, "window grew: {before} -> {after}");
        assert_eq!(m2.counters().wan_window_bumps, 1);
    }

    #[test]
    fn no_double_update_at_the_same_instant() {
        let params = FlowLevelParams { window: Some(1e7), ..FlowLevelParams::default() };
        let mut m = FlowLevelWan::new(params);
        m.on_start(0, wan(0.0), 1e8, 0.0);
        let mut changed = Vec::new();
        m.update_windows(1.0, &mut changed);
        assert_eq!(changed.len(), 1);
        changed.clear();
        assert!(!m.wants_window_update(1.0));
        m.update_windows(1.0, &mut changed);
        assert!(changed.is_empty(), "same-instant update must be a no-op");
    }

    #[test]
    fn deregistration_empties_the_queue() {
        let params = FlowLevelParams { window: Some(1e6), ..FlowLevelParams::default() };
        let mut m = FlowLevelWan::new(params);
        m.on_start(0, wan(0.0), 1e8, 0.0);
        m.on_start(1, wan(0.0), 1e8, 0.0);
        m.on_end(0);
        // Survivor's q now reflects only its own window.
        let cap = m.effective_cap(1, f64::INFINITY);
        assert!((cap - 1e8).abs() < 1e-3, "cap {cap}");
        m.on_end(1);
        assert!(!m.wants_window_update(9.0));
        // Double-end and never-registered slots are no-ops.
        m.on_end(1);
        m.on_end(17);
    }

    #[test]
    #[should_panic(expected = "gain")]
    fn invalid_gain_rejected() {
        FlowLevelParams { gain: 2.5, ..FlowLevelParams::default() }.validate();
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = FlowLevelWan::new(FlowLevelParams::default());
        m.on_start(0, wan(0.01), 1e8, 0.0);
        m.reset();
        assert_eq!(m.counters(), ModelCounters::default());
        assert!(!m.is_dynamic(0));
        assert_eq!(m.effective_cap(0, 7.0), 7.0);
    }
}
