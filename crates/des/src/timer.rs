//! Timer queue: a binary heap of (time, sequence) entries with lazy
//! cancellation. Sequence numbers break ties deterministically so runs are
//! reproducible regardless of allocation order.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::ids::{FlowId, Tag, TimerId};

/// What a timer does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TimerKind {
    /// Deliver a [`crate::Event::TimerFired`] to the caller.
    User(Tag),
    /// Internal: a pending flow's latency elapsed; activate it.
    ActivateFlow(FlowId),
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    time: f64,
    seq: u64,
    kind: TimerKind,
}

// Ordering for the max-heap (wrapped in Reverse for min-heap behaviour):
// earlier time first, then lower sequence number.
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.total_cmp(&other.time).then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Min-heap of timers with lazy cancellation.
#[derive(Debug, Default)]
pub(crate) struct TimerQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl TimerQueue {
    #[cfg(test)]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop every scheduled timer, keeping allocations. Sequence numbers
    /// keep increasing so stale [`TimerId`]s from before the clear can
    /// never cancel a new timer.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
    }

    pub fn schedule(&mut self, time: f64, kind: TimerKind) -> TimerId {
        assert!(time.is_finite(), "timer time must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, kind }));
        TimerId(seq)
    }

    pub fn cancel(&mut self, id: TimerId) {
        self.cancelled.insert(id.0);
    }

    /// Earliest pending (non-cancelled) fire time.
    pub fn peek_time(&mut self) -> Option<f64> {
        self.drop_cancelled();
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pop the earliest pending timer.
    pub fn pop(&mut self) -> Option<(TimerId, f64, TimerKind)> {
        self.drop_cancelled();
        self.heap.pop().map(|Reverse(e)| (TimerId(e.seq), e.time, e.kind))
    }

    /// Pop the next timer only if it is a flow activation scheduled at
    /// exactly `time`. Lets the engine gulp a burst of same-instant
    /// activations into one settle pass without disturbing the delivery
    /// order of user timers interleaved among them.
    pub fn pop_activation_at(&mut self, time: f64) -> Option<FlowId> {
        self.drop_cancelled();
        match self.heap.peek() {
            Some(&Reverse(Entry { time: t, kind: TimerKind::ActivateFlow(id), .. }))
                if t == time =>
            {
                self.heap.pop();
                Some(id)
            }
            _ => None,
        }
    }

    #[cfg(test)]
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    fn drop_cancelled(&mut self) {
        // Fast path: engines that never cancel timers (the simulator) pay
        // nothing here.
        if self.cancelled.is_empty() {
            return;
        }
        while let Some(Reverse(e)) = self.heap.peek() {
            if self.cancelled.remove(&e.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = TimerQueue::new();
        q.schedule(3.0, TimerKind::User(Tag(3)));
        q.schedule(1.0, TimerKind::User(Tag(1)));
        q.schedule(2.0, TimerKind::User(Tag(2)));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(_, t, _)| t)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = TimerQueue::new();
        let a = q.schedule(1.0, TimerKind::User(Tag(10)));
        let b = q.schedule(1.0, TimerKind::User(Tag(20)));
        assert_eq!(q.pop().unwrap().0, a);
        assert_eq!(q.pop().unwrap().0, b);
    }

    #[test]
    fn cancellation_is_lazy_but_effective() {
        let mut q = TimerQueue::new();
        let a = q.schedule(1.0, TimerKind::User(Tag(1)));
        q.schedule(2.0, TimerKind::User(Tag(2)));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(2.0));
        let (_, t, kind) = q.pop().unwrap();
        assert_eq!(t, 2.0);
        assert_eq!(kind, TimerKind::User(Tag(2)));
        assert!(q.is_empty());
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q = TimerQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None.map(|x: (TimerId, f64, TimerKind)| x));
    }
}
