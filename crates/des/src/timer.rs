//! Timer queue: a binary heap of (time, sequence) entries with lazy
//! cancellation. Sequence numbers break ties deterministically so runs are
//! reproducible regardless of allocation order.
//!
//! Cancellation is **generation-tagged**, not set-based: each timer owns a
//! slot in a small generation array, heap entries carry the generation they
//! were issued under, and cancelling bumps the slot's generation so the
//! stale heap entry no longer matches. Popping therefore costs two array
//! reads per entry — no hashing on the hot path, which matters for
//! arrival-heavy scenarios that fire one release timer per job.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::ids::{FlowId, Tag, TimerId};

/// What a timer does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TimerKind {
    /// Deliver a [`crate::Event::TimerFired`] to the caller.
    User(Tag),
    /// Internal: a pending flow's latency elapsed; activate it.
    ActivateFlow(FlowId),
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    time: f64,
    /// Global insertion sequence — the deterministic tie-breaker.
    seq: u64,
    /// Slot in the generation array this timer occupies.
    slot: u32,
    /// Generation the slot had when the timer was scheduled; the entry is
    /// live iff it still matches.
    generation: u32,
    kind: TimerKind,
}

// Ordering for the max-heap (wrapped in Reverse for min-heap behaviour):
// earlier time first, then lower sequence number.
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.total_cmp(&other.time).then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Min-heap of timers with generation-tagged lazy cancellation.
#[derive(Debug, Default)]
pub(crate) struct TimerQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    /// Current generation of each slot. A heap entry whose generation
    /// differs from its slot's current one is cancelled (or already
    /// popped) and is dropped when it reaches the top.
    slot_gen: Vec<u32>,
    /// Slots with no live entry, available for reuse. A slot becomes free
    /// when its live entry pops or is cancelled; the stale heap entry (if
    /// any) is harmless because its generation no longer matches.
    free_slots: Vec<u32>,
    next_seq: u64,
}

impl TimerQueue {
    #[cfg(test)]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop every scheduled timer, keeping allocations. Every slot's
    /// generation is bumped, so stale [`TimerId`]s from before the clear
    /// can never cancel a new timer; sequence numbers keep increasing so
    /// tie-breaking stays globally consistent.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.free_slots.clear();
        for (slot, g) in self.slot_gen.iter_mut().enumerate() {
            *g = g.wrapping_add(1);
            self.free_slots.push(slot as u32);
        }
    }

    pub fn schedule(&mut self, time: f64, kind: TimerKind) -> TimerId {
        assert!(time.is_finite(), "timer time must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.slot_gen.len()).expect("too many timers");
                self.slot_gen.push(0);
                s
            }
        };
        let generation = self.slot_gen[slot as usize];
        self.heap.push(Reverse(Entry { time, seq, slot, generation, kind }));
        TimerId::compose(slot, generation)
    }

    /// Cancel a timer: bump its slot's generation so the heap entry goes
    /// stale, and free the slot. Ids of already-fired (or already-
    /// cancelled) timers no longer match and are ignored.
    pub fn cancel(&mut self, id: TimerId) {
        let slot = id.slot();
        if (slot as usize) < self.slot_gen.len() && self.slot_gen[slot as usize] == id.timer_gen() {
            self.slot_gen[slot as usize] = self.slot_gen[slot as usize].wrapping_add(1);
            self.free_slots.push(slot);
        }
    }

    /// Earliest pending (non-cancelled) fire time.
    pub fn peek_time(&mut self) -> Option<f64> {
        self.drop_stale();
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pop the earliest pending timer.
    pub fn pop(&mut self) -> Option<(TimerId, f64, TimerKind)> {
        self.drop_stale();
        self.heap.pop().map(|Reverse(e)| {
            self.retire(e.slot);
            (TimerId::compose(e.slot, e.generation), e.time, e.kind)
        })
    }

    /// Pop the next timer only if it is a flow activation scheduled at
    /// exactly `time`. Lets the engine gulp a burst of same-instant
    /// activations into one settle pass without disturbing the delivery
    /// order of user timers interleaved among them.
    pub fn pop_activation_at(&mut self, time: f64) -> Option<FlowId> {
        self.drop_stale();
        match self.heap.peek() {
            Some(&Reverse(Entry { time: t, slot, kind: TimerKind::ActivateFlow(id), .. }))
                if t == time =>
            {
                self.heap.pop();
                self.retire(slot);
                Some(id)
            }
            _ => None,
        }
    }

    #[cfg(test)]
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// A live entry left the heap: retire its id and recycle the slot.
    #[inline]
    fn retire(&mut self, slot: u32) {
        self.slot_gen[slot as usize] = self.slot_gen[slot as usize].wrapping_add(1);
        self.free_slots.push(slot);
    }

    #[inline]
    fn drop_stale(&mut self) {
        while let Some(Reverse(e)) = self.heap.peek() {
            if self.slot_gen[e.slot as usize] == e.generation {
                break;
            }
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = TimerQueue::new();
        q.schedule(3.0, TimerKind::User(Tag(3)));
        q.schedule(1.0, TimerKind::User(Tag(1)));
        q.schedule(2.0, TimerKind::User(Tag(2)));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(_, t, _)| t)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = TimerQueue::new();
        let a = q.schedule(1.0, TimerKind::User(Tag(10)));
        let b = q.schedule(1.0, TimerKind::User(Tag(20)));
        assert_eq!(q.pop().unwrap().0, a);
        assert_eq!(q.pop().unwrap().0, b);
    }

    #[test]
    fn cancellation_is_lazy_but_effective() {
        let mut q = TimerQueue::new();
        let a = q.schedule(1.0, TimerKind::User(Tag(1)));
        q.schedule(2.0, TimerKind::User(Tag(2)));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(2.0));
        let (_, t, kind) = q.pop().unwrap();
        assert_eq!(t, 2.0);
        assert_eq!(kind, TimerKind::User(Tag(2)));
        assert!(q.is_empty());
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q = TimerQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None.map(|x: (TimerId, f64, TimerKind)| x));
    }

    #[test]
    fn stale_ids_cannot_cancel_recycled_slots() {
        let mut q = TimerQueue::new();
        let a = q.schedule(1.0, TimerKind::User(Tag(1)));
        assert_eq!(q.pop().unwrap().0, a);
        // The slot is recycled for b; a's id must not be able to kill it.
        let b = q.schedule(2.0, TimerKind::User(Tag(2)));
        q.cancel(a);
        assert_eq!(q.pop().unwrap().0, b);
    }

    #[test]
    fn cancelled_slot_is_reused_without_aliasing() {
        let mut q = TimerQueue::new();
        let a = q.schedule(5.0, TimerKind::User(Tag(1)));
        q.cancel(a);
        // b reuses a's slot while a's stale entry still sits in the heap.
        let b = q.schedule(1.0, TimerKind::User(Tag(2)));
        let (id, t, _) = q.pop().unwrap();
        assert_eq!((id, t), (b, 1.0));
        assert!(q.is_empty(), "a's stale entry must have been dropped");
    }

    #[test]
    fn double_cancel_is_harmless() {
        let mut q = TimerQueue::new();
        let a = q.schedule(1.0, TimerKind::User(Tag(1)));
        q.cancel(a);
        q.cancel(a);
        let b = q.schedule(2.0, TimerKind::User(Tag(2)));
        assert_eq!(q.pop().unwrap().0, b);
        assert!(q.is_empty());
    }

    #[test]
    fn clear_retires_outstanding_ids() {
        let mut q = TimerQueue::new();
        let a = q.schedule(1.0, TimerKind::User(Tag(1)));
        q.clear();
        assert!(q.is_empty());
        let b = q.schedule(1.0, TimerKind::User(Tag(2)));
        q.cancel(a); // stale: must not touch b even if the slot matches
        assert_eq!(q.pop().unwrap().0, b);
    }
}
