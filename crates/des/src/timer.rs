//! Timer queue: (time, sequence) entries with lazy cancellation, backed
//! by the same two-backend [`EventQueue`] as the completion list (so the
//! calendar backend covers both hot queues through one code path).
//! Sequence numbers break ties deterministically so runs are reproducible
//! regardless of allocation order.
//!
//! Cancellation is **generation-tagged**, not set-based: each timer owns a
//! slot in a small generation array, queue entries carry the generation
//! they were issued under, and cancelling bumps the slot's generation so
//! the stale entry no longer matches. Popping therefore costs two array
//! reads per entry — no hashing on the hot path, which matters for
//! arrival-heavy scenarios that fire one release timer per job.

use crate::eventlist::{EventKey, EventListBackend, EventQueue, QueueCounters};
use crate::ids::{FlowId, Tag, TimerId};

/// What a timer does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TimerKind {
    /// Deliver a [`crate::Event::TimerFired`] to the caller.
    User(Tag),
    /// Internal: a pending flow's latency elapsed; activate it.
    ActivateFlow(FlowId),
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    time: f64,
    /// Global insertion sequence — the deterministic tie-breaker.
    seq: u64,
    /// Slot in the generation array this timer occupies.
    slot: u32,
    /// Generation the slot had when the timer was scheduled; the entry is
    /// live iff it still matches.
    generation: u32,
    kind: TimerKind,
}

// Inverted ordering (earliest = greatest), as the shared queue requires:
// earlier time first, then lower sequence number. `(time, seq)` is
// already a total order — sequences are unique.
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl EventKey for Entry {
    #[inline]
    fn time(&self) -> f64 {
        self.time
    }
}

/// Min-first timer queue with generation-tagged lazy cancellation.
#[derive(Debug, Default)]
pub(crate) struct TimerQueue {
    queue: EventQueue<Entry>,
    /// Current generation of each slot. A queue entry whose generation
    /// differs from its slot's current one is cancelled (or already
    /// popped) and is dropped when it reaches the front.
    slot_gen: Vec<u32>,
    /// Slots with no live entry, available for reuse. A slot becomes free
    /// when its live entry pops or is cancelled; the stale queue entry (if
    /// any) is harmless because its generation no longer matches.
    free_slots: Vec<u32>,
    next_seq: u64,
    /// Stale (cancelled/retired) entries dropped by the skim.
    stale_drops: u64,
}

impl TimerQueue {
    #[cfg(test)]
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the backing store (see [`EventListBackend`]); live entries
    /// migrate, so this is safe at any point.
    pub fn set_backend(&mut self, backend: EventListBackend) {
        self.queue.set_backend(backend);
    }

    /// Queue operation counters plus the stale-drop count.
    pub fn counters(&self) -> (QueueCounters, u64) {
        (self.queue.counters(), self.stale_drops)
    }

    /// Drop every scheduled timer, keeping allocations. Every slot's
    /// generation is bumped, so stale [`TimerId`]s from before the clear
    /// can never cancel a new timer; sequence numbers keep increasing so
    /// tie-breaking stays globally consistent.
    pub fn clear(&mut self) {
        self.queue.clear();
        self.stale_drops = 0;
        self.free_slots.clear();
        for (slot, g) in self.slot_gen.iter_mut().enumerate() {
            *g = g.wrapping_add(1);
            self.free_slots.push(slot as u32);
        }
    }

    pub fn schedule(&mut self, time: f64, kind: TimerKind) -> TimerId {
        assert!(time.is_finite(), "timer time must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.slot_gen.len()).expect("too many timers");
                self.slot_gen.push(0);
                s
            }
        };
        let generation = self.slot_gen[slot as usize];
        self.queue.push(Entry { time, seq, slot, generation, kind });
        TimerId::compose(slot, generation)
    }

    /// Cancel a timer: bump its slot's generation so the queue entry goes
    /// stale, and free the slot. Ids of already-fired (or already-
    /// cancelled) timers no longer match and are ignored.
    pub fn cancel(&mut self, id: TimerId) {
        let slot = id.slot();
        if (slot as usize) < self.slot_gen.len() && self.slot_gen[slot as usize] == id.timer_gen() {
            self.slot_gen[slot as usize] = self.slot_gen[slot as usize].wrapping_add(1);
            self.free_slots.push(slot);
        }
    }

    /// Earliest pending (non-cancelled) fire time.
    pub fn peek_time(&mut self) -> Option<f64> {
        self.drop_stale();
        self.queue.peek().map(|e| e.time)
    }

    /// Pop the earliest pending timer.
    pub fn pop(&mut self) -> Option<(TimerId, f64, TimerKind)> {
        self.drop_stale();
        self.queue.pop().map(|e| {
            self.retire(e.slot);
            (TimerId::compose(e.slot, e.generation), e.time, e.kind)
        })
    }

    /// Pop the next timer only if it is a flow activation scheduled at
    /// exactly `time`. Lets the engine gulp a burst of same-instant
    /// activations into one settle pass without disturbing the delivery
    /// order of user timers interleaved among them.
    pub fn pop_activation_at(&mut self, time: f64) -> Option<FlowId> {
        self.drop_stale();
        match self.queue.peek() {
            Some(&Entry { time: t, slot, kind: TimerKind::ActivateFlow(id), .. }) if t == time => {
                self.queue.pop();
                self.retire(slot);
                Some(id)
            }
            _ => None,
        }
    }

    #[cfg(test)]
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// A live entry left the queue: retire its id and recycle the slot.
    #[inline]
    fn retire(&mut self, slot: u32) {
        self.slot_gen[slot as usize] = self.slot_gen[slot as usize].wrapping_add(1);
        self.free_slots.push(slot);
    }

    #[inline]
    fn drop_stale(&mut self) {
        while let Some(e) = self.queue.peek() {
            if self.slot_gen[e.slot as usize] == e.generation {
                break;
            }
            self.queue.pop();
            self.stale_drops += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = TimerQueue::new();
        q.schedule(3.0, TimerKind::User(Tag(3)));
        q.schedule(1.0, TimerKind::User(Tag(1)));
        q.schedule(2.0, TimerKind::User(Tag(2)));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(_, t, _)| t)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = TimerQueue::new();
        let a = q.schedule(1.0, TimerKind::User(Tag(10)));
        let b = q.schedule(1.0, TimerKind::User(Tag(20)));
        assert_eq!(q.pop().unwrap().0, a);
        assert_eq!(q.pop().unwrap().0, b);
    }

    #[test]
    fn cancellation_is_lazy_but_effective() {
        let mut q = TimerQueue::new();
        let a = q.schedule(1.0, TimerKind::User(Tag(1)));
        q.schedule(2.0, TimerKind::User(Tag(2)));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(2.0));
        let (_, t, kind) = q.pop().unwrap();
        assert_eq!(t, 2.0);
        assert_eq!(kind, TimerKind::User(Tag(2)));
        assert!(q.is_empty());
        assert_eq!(q.counters().1, 1, "one stale entry was skimmed");
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q = TimerQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None.map(|x: (TimerId, f64, TimerKind)| x));
    }

    #[test]
    fn stale_ids_cannot_cancel_recycled_slots() {
        let mut q = TimerQueue::new();
        let a = q.schedule(1.0, TimerKind::User(Tag(1)));
        assert_eq!(q.pop().unwrap().0, a);
        // The slot is recycled for b; a's id must not be able to kill it.
        let b = q.schedule(2.0, TimerKind::User(Tag(2)));
        q.cancel(a);
        assert_eq!(q.pop().unwrap().0, b);
    }

    #[test]
    fn cancelled_slot_is_reused_without_aliasing() {
        let mut q = TimerQueue::new();
        let a = q.schedule(5.0, TimerKind::User(Tag(1)));
        q.cancel(a);
        // b reuses a's slot while a's stale entry still sits in the queue.
        let b = q.schedule(1.0, TimerKind::User(Tag(2)));
        let (id, t, _) = q.pop().unwrap();
        assert_eq!((id, t), (b, 1.0));
        assert!(q.is_empty(), "a's stale entry must have been dropped");
    }

    #[test]
    fn double_cancel_is_harmless() {
        let mut q = TimerQueue::new();
        let a = q.schedule(1.0, TimerKind::User(Tag(1)));
        q.cancel(a);
        q.cancel(a);
        let b = q.schedule(2.0, TimerKind::User(Tag(2)));
        assert_eq!(q.pop().unwrap().0, b);
        assert!(q.is_empty());
    }

    #[test]
    fn clear_retires_outstanding_ids() {
        let mut q = TimerQueue::new();
        let a = q.schedule(1.0, TimerKind::User(Tag(1)));
        q.clear();
        assert!(q.is_empty());
        let b = q.schedule(1.0, TimerKind::User(Tag(2)));
        q.cancel(a); // stale: must not touch b even if the slot matches
        assert_eq!(q.pop().unwrap().0, b);
    }

    #[test]
    fn calendar_backend_preserves_timer_semantics() {
        for backend in [EventListBackend::Calendar, EventListBackend::Auto] {
            let mut q = TimerQueue::new();
            q.set_backend(backend);
            let a = q.schedule(1.0, TimerKind::User(Tag(10)));
            let b = q.schedule(1.0, TimerKind::User(Tag(20)));
            let c = q.schedule(0.5, TimerKind::User(Tag(30)));
            q.cancel(b);
            assert_eq!(q.pop().unwrap().0, c);
            assert_eq!(q.pop().unwrap().0, a);
            assert!(q.is_empty());
        }
    }
}
