//! Engine statistics.
//!
//! The event counters are load-bearing for the reproduction: the paper's
//! speed/accuracy trade-off (Table VI) rests on the simulated event count
//! scaling as O(s/B + s/b) with the block size `B` and buffer size `b`.
//! Integration tests assert that scaling against these counters.

/// Counters accumulated by an [`crate::Engine`] over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Flow-completion events delivered to the caller.
    pub flow_completions: u64,
    /// User timer events delivered to the caller.
    pub timer_firings: u64,
    /// Flows started (including pending ones).
    pub flows_started: u64,
    /// Flows cancelled before completion.
    pub flows_cancelled: u64,
    /// Full max–min rate recomputations performed.
    pub rate_recomputes: u64,
    /// Resources registered.
    pub resources: u64,
}

impl Stats {
    /// Total events delivered to the caller.
    pub fn events(&self) -> u64 {
        self.flow_completions + self.timer_firings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sums_completions_and_timers() {
        let s = Stats { flow_completions: 3, timer_firings: 4, ..Stats::default() };
        assert_eq!(s.events(), 7);
    }
}
