//! Engine statistics.
//!
//! The event counters are load-bearing for the reproduction: the paper's
//! speed/accuracy trade-off (Table VI) rests on the simulated event count
//! scaling as O(s/B + s/b) with the block size `B` and buffer size `b`.
//! Integration tests assert that scaling against these counters.

/// Counters accumulated by an [`crate::Engine`] over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Flow-completion events delivered to the caller.
    pub flow_completions: u64,
    /// User timer events delivered to the caller.
    pub timer_firings: u64,
    /// Flows started (including pending ones).
    pub flows_started: u64,
    /// Flows cancelled before completion.
    pub flows_cancelled: u64,
    /// Rate-settling passes (each may solve several dirty components).
    pub rate_recomputes: u64,
    /// Component-scoped max–min solves (one per dirty connected component
    /// per settling pass).
    pub component_solves: u64,
    /// Component solves whose component spanned *every* active routed
    /// flow — i.e. solves that were effectively global. A healthy
    /// incremental workload keeps this far below `component_solves`.
    pub full_solves: u64,
    /// Route-less flows assigned their cap rate in O(1), bypassing the
    /// solver entirely.
    pub routeless_assigns: u64,
    /// Identical-signature swap fast paths taken: a flow started right
    /// after an identically-shaped completion inherited its rate, with no
    /// solve at all (the steady state of pipelined chunk streams).
    pub swap_inherits: u64,
    /// Cumulative flows handed to the max–min solver across all component
    /// solves (the actual work done; a global-recompute engine would
    /// accumulate live-flows x events here).
    pub flows_resolved: u64,
    /// Resources registered.
    pub resources: u64,
    /// Same-timestamp completion batches (two or more completions sharing
    /// an instant) drained and settled together — one settle pass and at
    /// most one solve per touched component instead of one per event.
    pub batched_settles: u64,
    /// Completions delivered out of such batches (including the first of
    /// each batch).
    pub batched_completions: u64,
    /// Pending-flow activations gulped together with an earlier activation
    /// at the same instant, sharing its settle pass.
    pub batched_activations: u64,
    /// Settle passes in which every dirty mark came from a completion whose
    /// identical twin inherited its rate (a fully-matched batch): the marks
    /// were discarded with no solve at all.
    pub clean_batch_settles: u64,
    /// Component solves answered by the warm-start re-fill: the previous
    /// solve's sole bottleneck still dominates, so rates are re-filled
    /// uniformly in one verified pass with no progressive filling.
    pub warm_refills: u64,
    /// Component solves answered by a closed form (single resource with or
    /// without caps, two uncapped resources) instead of the general solver.
    pub closed_form_solves: u64,
    /// Component solves whose membership came from the incremental
    /// component-membership cache — the `collect_component` BFS (route
    /// chasing and resource discovery) was skipped, and only the member
    /// resources' incidence lists were gathered.
    pub memb_cache_hits: u64,
    /// Membership-cache captures: BFS walks whose resource set was stored
    /// for subsequent solves of the same (stable) component.
    pub memb_cache_builds: u64,
    /// Entries pushed onto the event queues (completion list + timers).
    pub event_pushes: u64,
    /// Entries popped off the event queues, including stale ones.
    pub event_pops: u64,
    /// Stale entries skimmed off on pop: completion entries whose epoch
    /// no longer matched (the flow finished, was cancelled, or changed
    /// rate since the push) plus cancelled/retired timer entries.
    pub event_stale_drops: u64,
    /// Calendar-queue resizes across both queues: day doubling/halving
    /// with width retune, plus the auto backend's heap→calendar
    /// migration.
    pub calendar_resizes: u64,
    /// Fruitless full-day calendar scans that fell back to a direct
    /// search over every bucket (kept near zero by width retuning).
    pub calendar_overflow_hits: u64,
    /// WAN-annotated flows registered with the active bandwidth model
    /// (zero under the default max–min model).
    pub wan_flows: u64,
    /// Multiplicative congestion-window decreases applied by a flow-level
    /// WAN model (congestion signals observed).
    pub wan_window_cuts: u64,
    /// Additive congestion-window increases applied by a flow-level WAN
    /// model.
    pub wan_window_bumps: u64,
}

impl Stats {
    /// Total events delivered to the caller.
    pub fn events(&self) -> u64 {
        self.flow_completions + self.timer_firings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sums_completions_and_timers() {
        let s = Stats { flow_completions: 3, timer_firings: 4, ..Stats::default() };
        assert_eq!(s.events(), 7);
    }
}
