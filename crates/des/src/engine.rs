//! The simulation engine: virtual clock, flow table, incremental rate
//! recomputation, and the caller-driven event loop.
//!
//! ## Incremental max–min recomputation
//!
//! The engine maintains a **resource ↔ flow incidence index**
//! (`flows_on[r]` = the active flows crossing resource `r`). When flows
//! start, complete, or are cancelled, only the resources on the touched
//! routes are marked dirty. Before the next event is computed, the engine
//! re-solves the max–min allocation **per connected component** of the
//! dirty resources in the flow/resource bipartite graph: rates in
//! untouched components are provably unchanged (max–min fair allocations
//! decompose across connected components), so they are not recomputed.
//!
//! Route-less flows (the simulator's dedicated-core compute blocks) form
//! singleton components and are assigned their cap in O(1), so the
//! steady-state pattern of pipelined compute/chunk streams never triggers
//! a global solve.
//!
//! The old global "swap candidate" fast path survives as the degenerate
//! case of this machinery: when a flow completes and the very next
//! incidence change is the start of a flow with an identical (route, cap)
//! signature, the max–min allocation is unchanged — the new flow inherits
//! the completed flow's rate and the completion's dirty marks are
//! cancelled, so the steady state costs no solve at all. Unlike the old
//! engine, the candidate here is scoped to the *routed* incidence state:
//! route-less compute churn between the pair no longer invalidates it.
//!
//! ## Event-list completions and lazy progress
//!
//! A flow's completion time `t0 + remaining/rate` is constant while its
//! rate is constant, so completions live in a lazy min-heap: one entry is
//! pushed per *rate change* (epoch-stamped; stale entries are discarded on
//! pop) instead of scanning every live flow per event. Flow progress is
//! settled lazily for the same reason: `remaining` is only brought up to
//! date when a flow's rate changes or the flow is observed — advancing
//! the clock touches no per-flow state at all. Together these make the
//! per-event cost proportional to the *touched component*, not to the
//! number of live flows.

use crate::flow::{FlowSpec, FlowState, FlowStatus};
use crate::ids::{FlowId, ResourceId, Tag, TimerId};
use crate::resource::ResourceSpec;
use crate::sharing::{solve_max_min, FlowInput, ResourceInput, MAX_RATE};
use crate::stats::Stats;
use crate::timer::{TimerKind, TimerQueue};

/// An event delivered to the caller by [`Engine::next`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A flow served its full demand.
    FlowCompleted {
        /// The completed flow.
        flow: FlowId,
        /// The tag the flow was started with.
        tag: Tag,
    },
    /// A user timer fired.
    TimerFired {
        /// The fired timer.
        timer: TimerId,
        /// The tag the timer was set with.
        tag: Tag,
    },
}

impl Event {
    /// The user tag carried by this event.
    pub fn tag(&self) -> Tag {
        match *self {
            Event::FlowCompleted { tag, .. } | Event::TimerFired { tag, .. } => tag,
        }
    }
}

/// The identical-signature swap fast path (see the module docs). Valid
/// only while no incidence change other than the candidate's completion
/// has happened; any attach/detach clears it.
#[derive(Debug)]
struct SwapCandidate {
    route: Vec<ResourceId>,
    rate_cap: Option<f64>,
    rate: f64,
}

/// A scheduled completion in the lazy event list. Stale entries (the flow
/// completed, was cancelled, or changed rate since the push) are detected
/// by the epoch stamp and dropped on pop.
#[derive(Debug, Clone, Copy)]
struct CompletionEntry {
    time: f64,
    flow: FlowId,
    epoch: u32,
}

impl PartialEq for CompletionEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.flow == other.flow
    }
}
impl Eq for CompletionEntry {}
impl PartialOrd for CompletionEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CompletionEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earliest first; FlowId breaks ties deterministically (matching
        // the old scan, which kept the lowest-id flow among equals).
        self.time.total_cmp(&other.time).then_with(|| self.flow.cmp(&other.flow))
    }
}

/// Fluid discrete-event simulation engine. See the crate docs for the model.
#[derive(Debug, Default)]
pub struct Engine {
    time: f64,
    resources: Vec<ResourceSpec>,
    flows: Vec<FlowState>,
    /// Number of flows in `Pending` or `Active` state.
    live_count: usize,
    timers: TimerQueue,
    stats: Stats,

    /// Incidence index: active flows crossing each resource. A flow whose
    /// route lists a resource `k` times appears `k` times (it consumes `k`
    /// shares, and the count feeds [`crate::CapacityModel::effective`]).
    flows_on: Vec<Vec<FlowId>>,
    /// Resources whose flow set changed since the last recomputation.
    dirty_queue: Vec<ResourceId>,
    dirty_res: Vec<bool>,
    /// Newly-activated route-less flows awaiting their O(1) rate.
    dirty_routeless: Vec<FlowId>,
    /// Pending identical-signature swap (set on completion, consumed by
    /// the next start, cleared by any other incidence change).
    swap: Option<SwapCandidate>,
    /// Lazy completion event list: one entry per rate assignment.
    completions: std::collections::BinaryHeap<std::cmp::Reverse<CompletionEntry>>,
    /// Current epoch of each flow's heap entries (bumped on rate change).
    flow_epoch: Vec<u32>,
    /// Number of currently active flows with a non-empty route (used to
    /// classify component solves as full/partial in [`Stats`]).
    n_active_routed: usize,

    // Generation-stamped visit marks for the component walk (no clearing
    // between recomputations).
    visit_gen: u64,
    flow_mark: Vec<u64>,
    res_mark: Vec<u64>,
    /// Local solver index of each component resource (valid under
    /// `res_mark[r] == visit_gen`).
    res_local: Vec<usize>,

    // Scratch buffers reused across recomputations.
    comp_stack: Vec<ResourceId>,
    comp_resources: Vec<ResourceId>,
    comp_flows: Vec<FlowId>,
    scratch_resources: Vec<ResourceInput>,
    scratch_flows: Vec<FlowInput>,
    scratch_rates: Vec<f64>,
}

impl Engine {
    /// A fresh engine at time 0 with no resources or flows.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.time
    }

    /// Engine statistics so far.
    #[inline]
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Clear all simulation state — flows, timers, resources, clock, and
    /// statistics — while keeping every internal allocation, so a reused
    /// engine pays no warm-up cost. This is the kernel half of the
    /// session-reuse machinery (`simcal-sim`'s `SimSession`).
    pub fn reset(&mut self) {
        self.time = 0.0;
        self.resources.clear();
        self.flows.clear();
        self.live_count = 0;
        self.timers.clear();
        self.stats = Stats::default();
        for v in &mut self.flows_on {
            v.clear();
        }
        self.dirty_queue.clear();
        self.dirty_res.clear();
        self.dirty_routeless.clear();
        self.swap = None;
        self.completions.clear();
        self.flow_epoch.clear();
        self.n_active_routed = 0;
        self.flow_mark.clear();
        // res_mark/res_local stay valid: marks are generation-stamped.
    }

    /// Register a resource.
    pub fn add_resource(&mut self, spec: ResourceSpec) -> ResourceId {
        let id = ResourceId(u32::try_from(self.resources.len()).expect("too many resources"));
        self.resources.push(spec);
        self.stats.resources += 1;
        if self.flows_on.len() < self.resources.len() {
            self.flows_on.push(Vec::new());
            self.res_mark.push(0);
            self.res_local.push(0);
        }
        self.dirty_res.resize(self.resources.len().max(self.dirty_res.len()), false);
        id
    }

    /// Start a flow; returns its id. The flow begins consuming bandwidth
    /// after its latency (if any) elapses.
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        spec.validate();
        for r in &spec.route {
            assert!(r.index() < self.resources.len(), "unknown resource in route");
        }
        let id = FlowId(u32::try_from(self.flows.len()).expect("too many flows"));
        let latency = spec.latency;
        let mut state = FlowState::from_spec(spec);
        state.last_settled = self.time;
        let pending = state.status == FlowStatus::Pending;
        self.flows.push(state);
        self.flow_mark.push(0);
        self.flow_epoch.push(0);
        self.live_count += 1;
        self.stats.flows_started += 1;
        if pending {
            // A pending flow does not change the current allocation.
            self.timers.schedule(self.time + latency, TimerKind::ActivateFlow(id));
        } else if self.swap.as_ref().is_some_and(|c| {
            c.route == self.flows[id.index()].route && c.rate_cap == self.flows[id.index()].rate_cap
        }) {
            // Identical-signature swap: the allocation depends only on the
            // multiset of (route, cap) pairs, which is unchanged — inherit
            // the completed flow's rate and cancel its dirty marks. A
            // mismatched start must NOT consume the candidate here: if it
            // is route-less it leaves the routed multiset untouched, and
            // if it is routed, `attach` below invalidates the candidate.
            let c = self.swap.take().expect("checked above");
            self.flows[id.index()].rate = c.rate;
            self.swap_attach(id);
            self.schedule_completion(id);
            self.stats.swap_inherits += 1;
        } else {
            self.attach(id);
        }
        id
    }

    /// Cancel a live flow. Completed/cancelled flows are ignored.
    pub fn cancel_flow(&mut self, id: FlowId) {
        match self.flows[id.index()].status {
            FlowStatus::Active => {
                // Freeze progress as of now before the rate disappears.
                self.settle_progress(id);
                let f = &mut self.flows[id.index()];
                f.status = FlowStatus::Cancelled;
                f.rate = 0.0;
                self.flow_epoch[id.index()] = self.flow_epoch[id.index()].wrapping_add(1);
                self.detach(id);
                self.live_count -= 1;
                self.stats.flows_cancelled += 1;
            }
            FlowStatus::Pending => {
                let f = &mut self.flows[id.index()];
                f.status = FlowStatus::Cancelled;
                f.rate = 0.0;
                self.live_count -= 1;
                self.stats.flows_cancelled += 1;
            }
            _ => {}
        }
    }

    /// Set a timer firing `delay` seconds from now.
    pub fn set_timer(&mut self, delay: f64, tag: Tag) -> TimerId {
        assert!(delay.is_finite() && delay >= 0.0, "timer delay must be non-negative");
        self.timers.schedule(self.time + delay, TimerKind::User(tag))
    }

    /// Cancel a timer (no-op if already fired).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.timers.cancel(id);
    }

    /// Remaining demand of a flow (0 for completed flows). Progress is
    /// settled lazily, so this derives the up-to-date value from the
    /// flow's rate and last settlement time.
    pub fn flow_remaining(&self, id: FlowId) -> f64 {
        let f = &self.flows[id.index()];
        if f.status == FlowStatus::Active && f.rate > 0.0 {
            (f.remaining - f.rate * (self.time - f.last_settled)).max(0.0)
        } else {
            f.remaining.max(0.0)
        }
    }

    /// Current rate of a flow. Rates are settled lazily before each event;
    /// call [`Engine::settle_rates`] first to observe a consistent
    /// allocation mid-update.
    pub fn flow_rate(&self, id: FlowId) -> f64 {
        self.flows[id.index()].rate
    }

    /// Status of a flow.
    pub fn flow_status(&self, id: FlowId) -> FlowStatus {
        self.flows[id.index()].status
    }

    /// Number of live (pending or active) flows.
    pub fn live_flows(&self) -> usize {
        self.live_count
    }

    /// Re-solve the allocation for every dirty component now, so that
    /// [`Engine::flow_rate`] reflects the current max–min fair shares.
    /// Called automatically by [`Engine::next`]; public so callers (and
    /// the differential property tests) can observe settled rates without
    /// advancing time.
    pub fn settle_rates(&mut self) {
        if !self.dirty_routeless.is_empty() || !self.dirty_queue.is_empty() {
            self.recompute_rates();
        }
    }

    /// Advance simulated time to the next event and return it, or `None`
    /// when no flows or timers remain.
    #[allow(clippy::should_implement_trait)] // established kernel API name
    pub fn next(&mut self) -> Option<Event> {
        loop {
            self.settle_rates();

            // Earliest valid completion from the lazy event list.
            let t_flow = loop {
                match self.completions.peek() {
                    None => break f64::INFINITY,
                    Some(std::cmp::Reverse(e)) => {
                        let f = &self.flows[e.flow.index()];
                        if f.status == FlowStatus::Active
                            && self.flow_epoch[e.flow.index()] == e.epoch
                        {
                            break e.time;
                        }
                        self.completions.pop();
                    }
                }
            };

            let t_timer = self.timers.peek_time().unwrap_or(f64::INFINITY);

            if t_flow.is_infinite() && t_timer.is_infinite() {
                debug_assert!(
                    self.flows.iter().all(|f| f.status != FlowStatus::Active || f.rate > 0.0),
                    "deadlock: active flows with zero rate and no timers"
                );
                return None;
            }

            if t_timer <= t_flow {
                self.advance_to(t_timer);
                let (timer, _, kind) = self.timers.pop().expect("peeked non-empty");
                match kind {
                    TimerKind::User(tag) => {
                        self.stats.timer_firings += 1;
                        return Some(Event::TimerFired { timer, tag });
                    }
                    TimerKind::ActivateFlow(id) => {
                        if self.flows[id.index()].status == FlowStatus::Pending {
                            self.flows[id.index()].status = FlowStatus::Active;
                            self.flows[id.index()].last_settled = t_timer;
                            self.attach(id);
                        }
                        continue;
                    }
                }
            } else {
                let std::cmp::Reverse(entry) =
                    self.completions.pop().expect("valid entry peeked above");
                let id = entry.flow;
                self.advance_to(entry.time);
                let f = &mut self.flows[id.index()];
                let rate = f.rate;
                f.remaining = 0.0;
                f.last_settled = entry.time;
                f.rate = 0.0;
                f.status = FlowStatus::Completed;
                let tag = f.tag;
                let rate_cap = f.rate_cap;
                self.flow_epoch[id.index()] = self.flow_epoch[id.index()].wrapping_add(1);
                self.detach(id);
                // Offer the completed flow as a swap candidate: rates were
                // settled at the top of the loop, so the only dirty marks
                // now present are this completion's own route.
                let route = std::mem::take(&mut self.flows[id.index()].route);
                self.swap = Some(SwapCandidate { route, rate_cap, rate });
                self.live_count -= 1;
                self.stats.flow_completions += 1;
                return Some(Event::FlowCompleted { flow: id, tag });
            }
        }
    }

    /// Run the simulation to completion, discarding events. Returns the
    /// final time. Mostly useful in tests.
    pub fn drain(&mut self) -> f64 {
        while self.next().is_some() {}
        self.time
    }

    /// Hook a newly-active flow into the incidence index *without* marking
    /// anything dirty, cancelling the matched completion's marks instead:
    /// the swap guarantees the allocation is unchanged.
    fn swap_attach(&mut self, id: FlowId) {
        let route = std::mem::take(&mut self.flows[id.index()].route);
        if !route.is_empty() {
            self.n_active_routed += 1;
            // Candidate validity means every dirty mark present came from
            // the completed twin's route — exactly this route.
            for r in self.dirty_queue.drain(..) {
                self.dirty_res[r.index()] = false;
            }
            for &r in &route {
                self.flows_on[r.index()].push(id);
            }
        }
        self.flows[id.index()].route = route;
    }

    /// Hook a newly-active flow into the incidence index and mark the
    /// touched part of the allocation dirty.
    fn attach(&mut self, id: FlowId) {
        debug_assert_eq!(self.flows[id.index()].status, FlowStatus::Active);
        if self.flows[id.index()].route.is_empty() {
            // A route-less flow shares nothing, so it cannot change the
            // routed multiset: a pending swap candidate stays valid.
            self.dirty_routeless.push(id);
            return;
        }
        self.swap = None;
        self.n_active_routed += 1;
        let route = std::mem::take(&mut self.flows[id.index()].route);
        for &r in &route {
            self.flows_on[r.index()].push(id);
            self.mark_dirty(r);
        }
        self.flows[id.index()].route = route;
    }

    /// Remove a no-longer-active flow from the incidence index and mark
    /// the resources it released dirty.
    fn detach(&mut self, id: FlowId) {
        let route = std::mem::take(&mut self.flows[id.index()].route);
        if !route.is_empty() {
            // Route-less detaches (like attaches) leave the routed
            // multiset untouched and preserve any swap candidate.
            self.swap = None;
            self.n_active_routed -= 1;
        }
        for &r in &route {
            let on = &mut self.flows_on[r.index()];
            let pos = on.iter().position(|&x| x == id).expect("flow indexed on its route");
            on.swap_remove(pos);
            self.mark_dirty(r);
        }
        self.flows[id.index()].route = route;
    }

    #[inline]
    fn mark_dirty(&mut self, r: ResourceId) {
        if !self.dirty_res[r.index()] {
            self.dirty_res[r.index()] = true;
            self.dirty_queue.push(r);
        }
    }

    /// Advance the clock. Flow progress is settled lazily (see the module
    /// docs), so this touches no per-flow state.
    fn advance_to(&mut self, t: f64) {
        debug_assert!(t >= self.time - 1e-12, "time went backwards: {} -> {t}", self.time);
        self.time = self.time.max(t);
    }

    /// Bring a flow's `remaining` up to date with the clock.
    fn settle_progress(&mut self, id: FlowId) {
        let t = self.time;
        let f = &mut self.flows[id.index()];
        if f.rate > 0.0 && t > f.last_settled {
            f.remaining = (f.remaining - f.rate * (t - f.last_settled)).max(0.0);
        }
        f.last_settled = t;
    }

    /// Assign a flow's rate, settling its progress and (re)scheduling its
    /// completion. Skips entirely when the rate is unchanged: the
    /// completion prediction `last_settled + remaining/rate` is invariant
    /// under clock advances at a constant rate.
    fn set_rate(&mut self, id: FlowId, rate: f64) {
        if self.flows[id.index()].rate == rate {
            return;
        }
        self.settle_progress(id);
        self.flows[id.index()].rate = rate;
        self.schedule_completion(id);
    }

    /// Push a fresh completion entry for an active flow with its current
    /// (settled) remaining and rate, invalidating any previous entry.
    fn schedule_completion(&mut self, id: FlowId) {
        let f = &self.flows[id.index()];
        debug_assert_eq!(f.status, FlowStatus::Active);
        debug_assert_eq!(f.last_settled, self.time, "schedule requires settled progress");
        if f.rate <= 0.0 {
            return;
        }
        let remaining = if f.is_done() { 0.0 } else { f.remaining };
        let time = self.time + remaining / f.rate;
        let epoch = self.flow_epoch[id.index()].wrapping_add(1);
        self.flow_epoch[id.index()] = epoch;
        self.completions.push(std::cmp::Reverse(CompletionEntry { time, flow: id, epoch }));
    }

    fn recompute_rates(&mut self) {
        self.stats.rate_recomputes += 1;
        // Settling consumes the dirty marks a swap would cancel; a
        // candidate surviving past here would inherit a stale rate.
        self.swap = None;

        // Route-less flows are singleton components: rate = cap (or the
        // solver's unconstrained maximum), assigned in O(1).
        while let Some(id) = self.dirty_routeless.pop() {
            if self.flows[id.index()].status == FlowStatus::Active {
                let rate = self.flows[id.index()].rate_cap.unwrap_or(MAX_RATE);
                self.set_rate(id, rate);
                self.stats.routeless_assigns += 1;
            }
        }

        // Walk each dirty connected component once and re-solve it.
        self.visit_gen += 1;
        let gen = self.visit_gen;
        while let Some(r0) = self.dirty_queue.pop() {
            self.dirty_res[r0.index()] = false;
            if self.res_mark[r0.index()] == gen {
                continue; // already solved as part of an earlier component
            }
            let has_cap = self.collect_component(r0, gen);
            if self.comp_resources.len() == 1 && !has_cap {
                self.solve_single_resource();
            } else {
                self.solve_component(gen);
            }
        }
    }

    /// Closed-form max–min for the most common component shape: one
    /// resource, no caps. Every flow is frozen by the single bottleneck at
    /// `effective_capacity / n_shares` — exactly what progressive filling
    /// computes, without the solver machinery.
    fn solve_single_resource(&mut self) {
        self.stats.component_solves += 1;
        self.stats.flows_resolved += self.comp_flows.len() as u64;
        if self.comp_flows.len() >= self.n_active_routed {
            self.stats.full_solves += 1;
        }
        let r = self.comp_resources[0];
        let n = self.flows_on[r.index()].len();
        if n == 0 {
            return;
        }
        // `n` counts route occurrences: a flow listing the resource twice
        // consumes two shares but still runs at one share's rate, exactly
        // as in `solve_max_min`.
        let share = self.resources[r.index()].capacity.effective(n).max(0.0) / n as f64;
        for k in 0..self.comp_flows.len() {
            let fid = self.comp_flows[k];
            self.set_rate(fid, share);
        }
    }

    /// Breadth-first walk of the flow/resource bipartite graph from `r0`,
    /// filling `comp_resources` / `comp_flows` with the connected
    /// component and stamping visit marks with `gen`. Returns whether any
    /// component flow carries a rate cap.
    fn collect_component(&mut self, r0: ResourceId, gen: u64) -> bool {
        self.comp_resources.clear();
        self.comp_flows.clear();
        self.comp_stack.clear();
        self.comp_stack.push(r0);
        self.res_mark[r0.index()] = gen;
        let mut has_cap = false;
        while let Some(r) = self.comp_stack.pop() {
            self.res_local[r.index()] = self.comp_resources.len();
            self.comp_resources.push(r);
            for k in 0..self.flows_on[r.index()].len() {
                let fid = self.flows_on[r.index()][k];
                if self.flow_mark[fid.index()] == gen {
                    continue;
                }
                self.flow_mark[fid.index()] = gen;
                self.comp_flows.push(fid);
                has_cap |= self.flows[fid.index()].rate_cap.is_some();
                let route = std::mem::take(&mut self.flows[fid.index()].route);
                for &r2 in &route {
                    if self.res_mark[r2.index()] != gen {
                        self.res_mark[r2.index()] = gen;
                        self.comp_stack.push(r2);
                    }
                }
                self.flows[fid.index()].route = route;
            }
        }
        has_cap
    }

    /// Max–min solve restricted to the collected component, writing the
    /// resulting rates back into the flow table.
    fn solve_component(&mut self, gen: u64) {
        self.stats.component_solves += 1;
        self.stats.flows_resolved += self.comp_flows.len() as u64;
        if self.comp_flows.len() >= self.n_active_routed {
            self.stats.full_solves += 1;
        }

        self.scratch_resources.clear();
        for &r in &self.comp_resources {
            let n = self.flows_on[r.index()].len();
            self.scratch_resources
                .push(ResourceInput { capacity: self.resources[r.index()].capacity.effective(n) });
        }

        let mut n_comp = 0usize;
        for &fid in &self.comp_flows {
            let f = &self.flows[fid.index()];
            debug_assert!(f.route.iter().all(|r| self.res_mark[r.index()] == gen));
            // Reuse FlowInput slots (and their route Vec allocations).
            if n_comp < self.scratch_flows.len() {
                let slot = &mut self.scratch_flows[n_comp];
                slot.route.clear();
                slot.route.extend(f.route.iter().map(|r| self.res_local[r.index()]));
                slot.cap = f.rate_cap;
            } else {
                self.scratch_flows.push(FlowInput {
                    route: f.route.iter().map(|r| self.res_local[r.index()]).collect(),
                    cap: f.rate_cap,
                });
            }
            n_comp += 1;
        }

        // Slice rather than truncate so spare FlowInput slots keep their
        // route-buffer allocations for the next solve.
        solve_max_min(
            &self.scratch_resources,
            &self.scratch_flows[..n_comp],
            &mut self.scratch_rates,
        );

        for k in 0..self.comp_flows.len() {
            let fid = self.comp_flows[k];
            let rate = self.scratch_rates[k];
            self.set_rate(fid, rate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceSpec;

    #[test]
    fn single_flow_duration_is_demand_over_capacity() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(1)));
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(1));
        assert!((e.now() - 10.0).abs() < 1e-9);
        assert!(e.next().is_none());
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        // Flow A: 100 units, flow B: 50 units on a 10-capacity resource.
        // Phase 1: both at rate 5 until B finishes at t=10.
        // Phase 2: A at rate 10 for its remaining 50 units -> done at t=15.
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(0xA)));
        e.start_flow(FlowSpec::new(50.0, &[r], Tag(0xB)));
        let ev1 = e.next().unwrap();
        assert_eq!(ev1.tag(), Tag(0xB));
        assert!((e.now() - 10.0).abs() < 1e-9);
        let ev2 = e.next().unwrap();
        assert_eq!(ev2.tag(), Tag(0xA));
        assert!((e.now() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn latency_delays_start() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(1)).with_latency(2.5));
        e.next().unwrap();
        assert!((e.now() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn rate_cap_limits_single_flow() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(100.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(1)).with_cap(4.0));
        e.next().unwrap();
        assert!((e.now() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn timers_interleave_with_flows() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(1)));
        e.set_timer(4.0, Tag(99));
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(99));
        assert!((e.now() - 4.0).abs() < 1e-9);
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(1));
        assert!((e.now() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn flow_added_midway_shares_remaining() {
        // A starts alone at rate 10. At t=5, B (50 units) arrives; both run
        // at 5. A has 50 left at t=5 -> both finish at t=15.
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(0xA)));
        e.set_timer(5.0, Tag(0));
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(0));
        e.start_flow(FlowSpec::new(50.0, &[r], Tag(0xB)));
        let t1 = e.next().unwrap();
        let t2 = e.next().unwrap();
        assert!((e.now() - 15.0).abs() < 1e-9);
        let tags = [t1.tag().0, t2.tag().0];
        assert!(tags.contains(&0xA) && tags.contains(&0xB));
    }

    #[test]
    fn cancel_flow_frees_bandwidth() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        let a = e.start_flow(FlowSpec::new(100.0, &[r], Tag(0xA)));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(0xB)));
        e.set_timer(2.0, Tag(0));
        e.next().unwrap(); // timer at t=2; both flows have 90 left
        e.cancel_flow(a);
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(0xB));
        // B had 90 left at t=2, now alone at rate 10 -> finishes at t=11.
        assert!((e.now() - 11.0).abs() < 1e-9, "now={}", e.now());
        assert_eq!(e.flow_status(a), FlowStatus::Cancelled);
    }

    #[test]
    fn cancel_pending_flow_never_activates() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        let a = e.start_flow(FlowSpec::new(100.0, &[r], Tag(0xA)).with_latency(1.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(0xB)));
        e.cancel_flow(a);
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(0xB));
        assert!((e.now() - 10.0).abs() < 1e-9, "B alone at rate 10, now={}", e.now());
        assert_eq!(e.flow_status(a), FlowStatus::Cancelled);
    }

    #[test]
    fn zero_demand_flow_completes_immediately() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(0.0, &[r], Tag(1)));
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(1));
        assert_eq!(e.now(), 0.0);
    }

    #[test]
    fn degrading_resource_slows_under_load() {
        // base 20, alpha 1.0: two flows -> aggregate 20*2/3 = 13.33, each 6.67.
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::degrading(20.0, 1.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(1)));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(2)));
        e.next().unwrap();
        let expected = 100.0 / (20.0 * 2.0 / 3.0 / 2.0);
        assert!((e.now() - expected).abs() < 1e-6, "now={} expected={expected}", e.now());
    }

    #[test]
    fn multi_resource_route_bound_by_tightest() {
        let mut e = Engine::new();
        let fast = e.add_resource(ResourceSpec::constant(100.0));
        let slow = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[fast, slow], Tag(1)));
        e.next().unwrap();
        assert!((e.now() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn drain_returns_final_time() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(1.0));
        e.start_flow(FlowSpec::new(3.0, &[r], Tag(1)));
        e.start_flow(FlowSpec::new(5.0, &[r], Tag(2)));
        let t = e.drain();
        assert!((t - 8.0).abs() < 1e-9); // work-conserving: total 8 units at rate 1
    }

    #[test]
    fn stats_count_events() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(1.0));
        e.start_flow(FlowSpec::new(1.0, &[r], Tag(1)));
        e.set_timer(0.5, Tag(2));
        e.drain();
        let s = e.stats();
        assert_eq!(s.flow_completions, 1);
        assert_eq!(s.timer_firings, 1);
        assert_eq!(s.flows_started, 1);
        assert_eq!(s.resources, 1);
        assert_eq!(s.events(), 2);
    }

    #[test]
    fn simultaneous_completions_all_delivered() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        for i in 0..4 {
            e.start_flow(FlowSpec::new(25.0, &[r], Tag(i)));
        }
        let mut tags = Vec::new();
        while let Some(ev) = e.next() {
            assert!((e.now() - 10.0).abs() < 1e-9);
            tags.push(ev.tag().0);
        }
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 1, 2, 3]);
    }

    #[test]
    fn disjoint_components_solve_independently() {
        // Two resources with no shared flows: completing a flow on one must
        // re-solve only that component.
        let mut e = Engine::new();
        let r1 = e.add_resource(ResourceSpec::constant(10.0));
        let r2 = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r1], Tag(1)));
        e.start_flow(FlowSpec::new(100.0, &[r1], Tag(2)));
        e.start_flow(FlowSpec::new(50.0, &[r2], Tag(3)));
        e.settle_rates();
        let s0 = e.stats();
        // One settle pass; r1 and r2 are separate components.
        assert_eq!(s0.component_solves, 2);
        assert_eq!(s0.full_solves, 0, "neither component spans all routed flows");

        // Completing the r2 flow (t=5) must only re-solve r2's component.
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(3));
        e.settle_rates();
        let s1 = e.stats();
        assert_eq!(s1.component_solves - s0.component_solves, 1);
        assert_eq!(s1.flows_resolved - s0.flows_resolved, 0, "r2's component is now empty");
        // r1's flows kept their old rate without a solve.
        assert!((e.flow_rate(FlowId(0)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn routeless_flows_never_trigger_component_solves() {
        let mut e = Engine::new();
        for i in 0..8 {
            e.start_flow(FlowSpec::new(10.0, &[], Tag(i)).with_cap(1.0 + i as f64));
        }
        e.settle_rates();
        let s = e.stats();
        assert_eq!(s.component_solves, 0);
        assert_eq!(s.routeless_assigns, 8);
        assert!((e.flow_rate(FlowId(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncapped_routeless_flow_completes_instantly() {
        let mut e = Engine::new();
        e.start_flow(FlowSpec::new(1e9, &[], Tag(7)));
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(7));
        assert!(e.now() < 1e-9, "MAX_RATE makes the duration negligible");
    }

    #[test]
    fn shared_resource_merges_components() {
        // f1 on {a}, f2 on {a, b}, f3 on {b}: one component through f2.
        let mut e = Engine::new();
        let a = e.add_resource(ResourceSpec::constant(10.0));
        let b = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[a], Tag(1)));
        e.start_flow(FlowSpec::new(100.0, &[a, b], Tag(2)));
        e.start_flow(FlowSpec::new(100.0, &[b], Tag(3)));
        e.settle_rates();
        let s = e.stats();
        assert_eq!(s.component_solves, 1);
        assert_eq!(s.full_solves, 1);
        assert_eq!(s.flows_resolved, 3);
        for i in 0..3 {
            assert!((e.flow_rate(FlowId(i)) - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn reset_clears_state_but_reuses_allocations() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(1)));
        e.set_timer(1000.0, Tag(9));
        e.drain();
        assert!(e.now() > 0.0);

        e.reset();
        assert_eq!(e.now(), 0.0);
        assert_eq!(e.live_flows(), 0);
        assert_eq!(e.stats(), Stats::default());

        // A fresh run on the reused engine behaves like a new engine.
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(2)));
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(2));
        assert!((e.now() - 10.0).abs() < 1e-9);
        assert!(e.next().is_none());
    }

    #[test]
    fn reset_with_fewer_resources_is_sound() {
        let mut e = Engine::new();
        let r1 = e.add_resource(ResourceSpec::constant(10.0));
        let r2 = e.add_resource(ResourceSpec::constant(20.0));
        e.start_flow(FlowSpec::new(10.0, &[r1, r2], Tag(1)));
        e.drain();
        e.reset();
        let r = e.add_resource(ResourceSpec::constant(5.0));
        e.start_flow(FlowSpec::new(50.0, &[r], Tag(2)));
        e.next().unwrap();
        assert!((e.now() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn pipelined_reissue_stays_component_scoped() {
        // The pattern that motivated the old swap fast path: a stream of
        // identical flows on one resource, reissued on completion, while an
        // unrelated resource hosts its own flows. The unrelated component
        // must never be re-solved.
        let mut e = Engine::new();
        let hot = e.add_resource(ResourceSpec::constant(10.0));
        let cold = e.add_resource(ResourceSpec::constant(1.0));
        e.start_flow(FlowSpec::new(1e6, &[cold], Tag(999)));
        e.start_flow(FlowSpec::new(10.0, &[hot], Tag(0)));
        e.settle_rates();
        let base = e.stats();
        for k in 1..=50 {
            let ev = e.next().unwrap();
            assert_eq!(ev.tag(), Tag(k - 1));
            e.start_flow(FlowSpec::new(10.0, &[hot], Tag(k)));
        }
        e.settle_rates();
        let s = e.stats();
        // Every reissue hit the identical-signature swap: no solver work
        // at all, and the cold component was never touched.
        assert_eq!(s.swap_inherits - base.swap_inherits, 50);
        assert_eq!(s.flows_resolved, base.flows_resolved);
        assert_eq!(s.full_solves, base.full_solves);
    }

    #[test]
    fn swap_survives_routeless_churn() {
        // The documented steady state: a chunk completes, a route-less
        // compute block starts, then the identical chunk is reissued. The
        // compute start must not invalidate the swap candidate.
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(10.0, &[r], Tag(0)));
        e.start_flow(FlowSpec::new(1e4, &[r], Tag(9)));
        e.next().unwrap(); // Tag(0) completes; candidate = its signature
        e.start_flow(FlowSpec::new(5.0, &[], Tag(50)).with_cap(2.0)); // route-less churn
        e.start_flow(FlowSpec::new(10.0, &[r], Tag(1))); // identical twin
        assert_eq!(e.stats().swap_inherits, 1, "candidate survived the route-less start");
        e.settle_rates();
        assert!((e.flow_rate(FlowId(3)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn swap_requires_identical_signature() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(10.0, &[r], Tag(0)).with_cap(3.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(9)));
        e.next().unwrap(); // capped flow completes
                           // Different cap: must NOT inherit; a real solve gives it the full
                           // remaining share.
        e.start_flow(FlowSpec::new(10.0, &[r], Tag(1)).with_cap(8.0));
        e.settle_rates();
        assert_eq!(e.stats().swap_inherits, 0);
        assert!((e.flow_rate(FlowId(2)) - 5.0).abs() < 1e-9, "fair share, not old cap");
    }

    #[test]
    fn swap_candidate_dies_on_settle() {
        // A settle between the completion and the identical start consumes
        // the dirty marks; the start must trigger a fresh solve, not
        // inherit a stale rate.
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(10.0, &[r], Tag(0)));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(9)));
        e.next().unwrap(); // Tag(0) completes at t=2 (rate 5 each)
        e.settle_rates(); // Tag(9) re-solved alone: rate 10
        e.start_flow(FlowSpec::new(10.0, &[r], Tag(1)));
        e.settle_rates();
        assert_eq!(e.stats().swap_inherits, 0);
        assert!((e.flow_rate(FlowId(2)) - 5.0).abs() < 1e-9);
        assert!((e.flow_rate(FlowId(1)) - 5.0).abs() < 1e-9);
    }
}
