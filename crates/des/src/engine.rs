//! The simulation engine: virtual clock, flow table, incremental rate
//! recomputation, and the caller-driven event loop.
//!
//! ## Incremental max–min recomputation
//!
//! The engine maintains a **resource ↔ flow incidence index**
//! (`flows_on[r]` = the active flows crossing resource `r`). When flows
//! start, complete, or are cancelled, only the resources on the touched
//! routes are marked dirty. Before the next event is computed, the engine
//! re-solves the max–min allocation **per connected component** of the
//! dirty resources in the flow/resource bipartite graph: rates in
//! untouched components are provably unchanged (max–min fair allocations
//! decompose across connected components), so they are not recomputed.
//!
//! Route-less flows (the simulator's dedicated-core compute blocks) form
//! singleton components and are assigned their cap in O(1), so the
//! steady-state pattern of pipelined compute/chunk streams never triggers
//! a global solve.
//!
//! ## Same-timestamp settle batching
//!
//! Chunk-pipelined workloads finish many flows at the same instant. The
//! event loop therefore pops **every** valid completion sharing the
//! earliest timestamp in one gulp: all of them are marked completed and
//! detached up front, the events are delivered one per [`Engine::next`]
//! call from an internal buffer, and the allocation is settled **once**
//! for the whole batch — at most one solve per (component, timestamp)
//! instead of one per event. Same-instant flow *activations* (latency
//! timers expiring together) are gulped the same way. This is sound
//! because zero simulated time passes inside a batch: no flow makes
//! progress between the batched changes, so only the final allocation is
//! ever observable.
//!
//! Each batched completion is also offered as an **identical-signature
//! swap candidate**: when the caller reacts to a completion by starting a
//! flow with the same (route, cap) signature — the steady state of
//! pipelined block/chunk streams — the allocation is provably unchanged,
//! and the new flow inherits the completed twin's rate. If *every*
//! candidate of a batch is matched this way and nothing else touched the
//! routed incidence, the batch's dirty marks are discarded at the next
//! settle with **no solve at all** (the generalisation of the classic
//! single-flow swap fast path, which remains the size-1 case). Route-less
//! churn between the pair does not invalidate candidates.
//!
//! ## Event-list completions and lazy progress
//!
//! A flow's completion time `t0 + remaining/rate` is constant while its
//! rate is constant, so completions live in a lazy min-heap: one entry is
//! pushed per *rate change* (epoch-stamped; stale entries are discarded on
//! pop) instead of scanning every live flow per event. Flow progress is
//! settled lazily for the same reason: `remaining` is only brought up to
//! date when a flow's rate changes or the flow is observed — advancing
//! the clock touches no per-flow state at all. Together these make the
//! per-event cost proportional to the *touched component*, not to the
//! number of live flows.
//!
//! ## Component solve fast paths
//!
//! Dirty components are dispatched by shape: one resource (with or
//! without caps) and two uncapped resources take closed forms; a
//! multi-resource component whose previous solve froze everything against
//! a single bottleneck takes a **warm-start re-fill** — the uniform share
//! is recomputed for the new membership and verified feasible in one
//! pass, which is the steady state of the big shared WAN/storage
//! component whose flow set changes by ±k flows per timestamp. Everything
//! else runs the allocation-free [`SolveScratch`] solver.

use crate::eventlist::{CompletionEntry, EventList, EventListBackend};
use crate::flow::{FlowSpec, FlowState, FlowStatus};
use crate::ids::{FlowId, ResourceId, Tag, TimerId};
use crate::model::{BandwidthModel, BandwidthModelConfig, ModelDispatch};
use crate::resource::ResourceSpec;
use crate::route::Route;
use crate::sharing::{SolveScratch, MAX_RATE};
use crate::stats::Stats;
use crate::timer::{TimerKind, TimerQueue};

/// An event delivered to the caller by [`Engine::next`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A flow served its full demand.
    FlowCompleted {
        /// The completed flow.
        flow: FlowId,
        /// The tag the flow was started with.
        tag: Tag,
    },
    /// A user timer fired.
    TimerFired {
        /// The fired timer.
        timer: TimerId,
        /// The tag the timer was set with.
        tag: Tag,
    },
}

impl Event {
    /// The user tag carried by this event.
    #[inline]
    pub fn tag(&self) -> Tag {
        match *self {
            Event::FlowCompleted { tag, .. } | Event::TimerFired { tag, .. } => tag,
        }
    }
}

/// An identical-signature swap candidate: one completion of the current
/// same-timestamp batch (see the module docs). Candidates live until the
/// next settle; a start matching (route, cap) inherits `rate`.
#[derive(Debug)]
struct SwapCandidate {
    route: Route,
    /// Sentinel form: `f64::INFINITY` = uncapped.
    rate_cap: f64,
    rate: f64,
}

/// Shape summary of a collected component, gathered during the walk.
struct CompInfo {
    /// Whether any component flow carries a rate cap.
    has_cap: bool,
    /// Smallest cap among component flows (`INFINITY` when none).
    min_cap: f64,
}

/// One incidence entry: a flow crossing a resource via its `hop`-th route
/// element. Carrying the hop lets `detach` maintain the per-flow position
/// table under `swap_remove` moves, making removal O(route length).
#[derive(Debug, Clone, Copy)]
struct OnEntry {
    flow: FlowId,
    hop: u32,
}

/// A cached component membership: the resource set a previous
/// [`Engine::collect_component`] walk discovered. The set is kept *closed
/// under the incidence relation* — any attach that would connect a member
/// resource to a non-member invalidates the slot (see
/// [`Engine::note_attach_route`]) — so gathering the flows of every member
/// resource reproduces the component without re-walking flow routes.
/// Detaches never invalidate: they can only split the component, and
/// solving the cached superset jointly is still exact (max–min fair
/// allocations decompose across connected components).
#[derive(Debug, Default)]
struct CompSlot {
    /// Validity stamp; labels carrying an older stamp are dead. Bumped on
    /// capture and on invalidation.
    stamp: u64,
    /// The member resources, in solver-local index order.
    resources: Vec<ResourceId>,
}

/// A resource's pointer into the membership cache: valid while the slot's
/// stamp still matches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct CompLabel {
    slot: u32,
    stamp: u64,
}

/// Fluid discrete-event simulation engine. See the crate docs for the model.
#[derive(Debug, Default)]
pub struct Engine {
    time: f64,
    resources: Vec<ResourceSpec>,
    flows: Vec<FlowState>,
    /// Slots of finished (completed/cancelled) flows available for reuse.
    /// Recycling keeps the flow table sized by the number of *live* flows
    /// — cache-resident — instead of growing by every flow ever started.
    free_slots: Vec<u32>,
    /// Current generation of each slot (bumped when a slot is recycled);
    /// ids carry the generation they were issued under, so queries with
    /// ids of recycled flows read as retired instead of aliasing the
    /// slot's new occupant.
    slot_gen: Vec<u32>,
    /// Number of flows in `Pending` or `Active` state.
    live_count: usize,
    timers: TimerQueue,
    stats: Stats,

    /// Incidence index: active flows crossing each resource. A flow whose
    /// route lists a resource `k` times appears `k` times (it consumes `k`
    /// shares, and the count feeds [`crate::CapacityModel::effective`]).
    flows_on: Vec<Vec<OnEntry>>,
    /// Position of each flow's first [`Route::INLINE`] incidence entries
    /// inside `flows_on` (indexed by slot), so detaching needs no scan;
    /// hops beyond the inline window fall back to a scan (spilled routes
    /// are rare).
    flow_pos: Vec<[u32; Route::INLINE]>,
    /// Two-tier dirty state per resource: 0 = clean, 1 = *weak* (touched
    /// only by batched completions, each held as a swap candidate — an
    /// allocation-neutral change if the candidate is matched), 2 = *strong*
    /// (touched by a foreign attach/cancel or an unmatched candidate; its
    /// component must be re-solved).
    dirty_res: Vec<u8>,
    weak_queue: Vec<ResourceId>,
    strong_queue: Vec<ResourceId>,
    /// Newly-activated route-less flows awaiting their O(1) rate.
    dirty_routeless: Vec<FlowId>,
    /// Swap candidates of the current same-timestamp batch (consumed by
    /// matching starts; unmatched ones escalate their weak marks to strong
    /// at the next settle, which also clears the list).
    batch_candidates: Vec<SwapCandidate>,
    /// Completion events of the current batch not yet handed to the
    /// caller, delivered before anything else by [`Engine::next`].
    pending_events: Vec<Event>,
    pending_head: usize,
    /// Lazy completion event list: one entry per rate assignment.
    completions: EventList,
    /// Current epoch of each flow's heap entries (bumped on rate change).
    flow_epoch: Vec<u32>,
    /// Number of currently active flows with a non-empty route (used to
    /// classify component solves as full/partial in [`Stats`]).
    n_active_routed: usize,

    // Generation-stamped visit marks for the component walk (no clearing
    // between recomputations).
    visit_gen: u64,
    flow_mark: Vec<u64>,
    res_mark: Vec<u64>,
    /// Local solver index of each component resource (valid under
    /// `res_mark[r] == visit_gen`).
    res_local: Vec<usize>,
    /// Per-resource warm-start flag: the last solve of a component
    /// containing this resource froze every flow against it alone.
    warm_bneck: Vec<bool>,

    // Incremental component-membership cache: resource sets captured by
    // previous component walks, so repeated solves of a stable component
    // skip the `collect_component` BFS entirely (the flows are gathered
    // straight from the member resources' incidence lists).
    comp_cache: Vec<CompSlot>,
    free_comp_slots: Vec<u32>,
    /// Per-resource label into `comp_cache` (stamp-checked).
    res_comp: Vec<CompLabel>,

    // Scratch buffers reused across recomputations.
    comp_stack: Vec<ResourceId>,
    comp_resources: Vec<ResourceId>,
    comp_flows: Vec<FlowId>,
    scratch: SolveScratch,
    cap_sort: Vec<(f64, u32)>,

    /// The bandwidth model behind the seam (see [`BandwidthModel`]): every
    /// cap the solver reads, the swap/weak-mark gating, per-flow WAN
    /// latency, and the pre-settle window hook route through it. Default
    /// is the static max–min model, whose hooks are all identity no-ops.
    model: ModelDispatch,
    /// Scratch: slots whose effective caps changed in a window update.
    wan_changed: Vec<u32>,
}

impl Engine {
    /// A fresh engine at time 0 with no resources or flows.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.time
    }

    /// Engine statistics so far. The event-queue counters (pushes, pops,
    /// stale drops, calendar resizes/overflow hits) and the bandwidth
    /// model's WAN counters are merged in from their owners at read time.
    #[inline]
    pub fn stats(&self) -> Stats {
        let mut s = self.stats;
        let c = self.completions.counters();
        let (t, timer_stale) = self.timers.counters();
        s.event_pushes = c.pushes + t.pushes;
        s.event_pops = c.pops + t.pops;
        s.event_stale_drops += timer_stale;
        s.calendar_resizes = c.resizes + t.resizes;
        s.calendar_overflow_hits = c.overflow_hits + t.overflow_hits;
        let m = self.model.counters();
        s.wan_flows = m.wan_flows;
        s.wan_window_cuts = m.wan_window_cuts;
        s.wan_window_bumps = m.wan_window_bumps;
        s
    }

    /// Select the backing store of both event queues (completion list and
    /// timers). Live entries migrate and pop order is backend-invariant
    /// (see [`EventListBackend`]), so this only affects timing and the
    /// calendar counters; callers normally set it right after
    /// construction or [`Engine::reset`].
    pub fn set_event_list_backend(&mut self, backend: EventListBackend) {
        self.completions.set_backend(backend);
        self.timers.set_backend(backend);
    }

    /// Select the bandwidth model behind the seam: the default incremental
    /// max–min solver, or the flow-level WAN backend (propagation delay,
    /// AIMD windows, QDisc queueing feedback — see [`crate::FlowLevelWan`]).
    /// Swapping models discards the previous model's per-flow state, so
    /// callers set it right after construction or [`Engine::reset`],
    /// before starting flows.
    pub fn set_bandwidth_model(&mut self, config: BandwidthModelConfig) {
        self.model = ModelDispatch::from_config(config);
    }

    /// Short stable name of the active bandwidth model (`"maxmin"` /
    /// `"flow-level"`).
    pub fn bandwidth_model_name(&self) -> &'static str {
        self.model.name()
    }

    /// Clear all simulation state — flows, timers, resources, clock, and
    /// statistics — while keeping every internal allocation, so a reused
    /// engine pays no warm-up cost. This is the kernel half of the
    /// session-reuse machinery (`simcal-sim`'s `SimSession`).
    pub fn reset(&mut self) {
        self.time = 0.0;
        self.resources.clear();
        self.flows.clear();
        self.free_slots.clear();
        self.slot_gen.clear();
        self.live_count = 0;
        self.timers.clear();
        self.stats = Stats::default();
        for v in &mut self.flows_on {
            v.clear();
        }
        self.weak_queue.clear();
        self.strong_queue.clear();
        self.dirty_res.clear();
        self.dirty_routeless.clear();
        self.batch_candidates.clear();
        self.pending_events.clear();
        self.pending_head = 0;
        self.completions.clear();
        self.flow_epoch.clear();
        self.n_active_routed = 0;
        self.flow_mark.clear();
        self.flow_pos.clear();
        for w in &mut self.warm_bneck {
            *w = false;
        }
        // Retire every cached membership (stamp bump kills all labels)
        // while keeping the slot allocations for the next run.
        self.free_comp_slots.clear();
        for (s, slot) in self.comp_cache.iter_mut().enumerate() {
            slot.stamp += 1;
            slot.resources.clear();
            self.free_comp_slots.push(s as u32);
        }
        // The model selection survives the reset (like the event-list
        // backend); only its per-run flow state is cleared.
        self.model.reset();
        // res_mark/res_local stay valid: marks are generation-stamped.
    }

    /// Register a resource.
    pub fn add_resource(&mut self, spec: ResourceSpec) -> ResourceId {
        let id = ResourceId(u32::try_from(self.resources.len()).expect("too many resources"));
        self.resources.push(spec);
        self.stats.resources += 1;
        if self.flows_on.len() < self.resources.len() {
            self.flows_on.push(Vec::new());
            self.res_mark.push(0);
            self.res_local.push(0);
            self.warm_bneck.push(false);
            self.res_comp.push(CompLabel::default());
        }
        self.dirty_res.resize(self.resources.len().max(self.dirty_res.len()), 0);
        id
    }

    /// Start a flow; returns its id. The flow begins consuming bandwidth
    /// after its latency (if any) elapses. A WAN-annotated flow
    /// ([`FlowSpec::with_wan`]) additionally pays the bandwidth model's
    /// propagation delay and is registered with the model's per-flow
    /// state; under the default max–min model the annotation is inert.
    pub fn start_flow(&mut self, mut spec: FlowSpec) -> FlowId {
        spec.validate();
        for r in spec.route.as_slice() {
            assert!(r.index() < self.resources.len(), "unknown resource in route");
        }
        let wan = spec.wan;
        if let Some(w) = wan {
            assert!(w.bottleneck.index() < self.resources.len(), "unknown WAN bottleneck");
            spec.latency += self.model.extra_latency(w.delay);
        }
        let latency = spec.latency;
        let mut state = FlowState::from_spec(spec);
        state.last_settled = self.time;
        let pending = state.status == FlowStatus::Pending;
        let slot = match self.free_slots.pop() {
            Some(s) => {
                // Recycle a finished flow's slot in place; bumping the
                // generation retires every id issued for it before.
                self.slot_gen[s as usize] += 1;
                self.flows[s as usize] = state;
                s
            }
            None => {
                let s = u32::try_from(self.flows.len()).expect("too many flows");
                self.flows.push(state);
                self.flow_mark.push(0);
                self.flow_epoch.push(0);
                self.slot_gen.push(0);
                self.flow_pos.push([0; Route::INLINE]);
                s
            }
        };
        let id = FlowId::compose(slot, self.slot_gen[slot as usize]);
        self.live_count += 1;
        self.stats.flows_started += 1;
        if let Some(w) = wan {
            // Registered before the swap-candidate check below: a dynamic
            // flow must never take the inherit fast path.
            let cap = self.resources[w.bottleneck.index()].capacity.effective(1);
            self.model.on_start(slot as usize, w, cap, self.time);
        }
        if pending {
            // A pending flow does not change the current allocation.
            self.timers.schedule(self.time + latency, TimerKind::ActivateFlow(id));
        } else if let Some(k) = self.match_candidate(id) {
            // Identical-signature swap: if nothing else touched this
            // component, the allocation depends only on the multiset of
            // (route, cap) pairs, which is unchanged — inherit the
            // completed twin's rate. The twin's weak dirty marks stay in
            // place, so if something *did* change the component, the next
            // settle re-solves it (via the strong marks of that change)
            // and overwrites the provisional rate. A fully-matched batch
            // leaves only weak marks, which settle discards with no solve.
            let c = self.batch_candidates.swap_remove(k);
            self.flows[id.index()].rate = c.rate;
            self.inherit_attach(id);
            self.schedule_completion(id);
            self.stats.swap_inherits += 1;
            if self.batch_candidates.is_empty() && self.strong_queue.is_empty() {
                // Eager clean verdict: every batched completion has been
                // matched and nothing foreign touched the routed
                // incidence — drop the weak marks now and skip the settle
                // entirely (the steady state of pipelined streams costs
                // no recompute pass at all).
                self.discard_weak_marks();
            }
        } else {
            self.attach(id);
        }
        id
    }

    /// Index of a batch candidate with this flow's exact (route, cap)
    /// signature. Identical signatures always receive identical max–min
    /// rates, so any match is valid — except for flows whose effective cap
    /// the bandwidth model drives dynamically: an inherited rate would
    /// bake in the twin's (stale) cap, so they always take a real attach.
    fn match_candidate(&self, id: FlowId) -> Option<usize> {
        if self.batch_candidates.is_empty() {
            return None;
        }
        let f = &self.flows[id.index()];
        if f.route.is_empty() || self.model.is_dynamic(id.index()) {
            return None;
        }
        self.batch_candidates.iter().position(|c| c.rate_cap == f.rate_cap && c.route == f.route)
    }

    /// Whether `id`'s slot still belongs to the flow it was issued for
    /// (its state — including a terminal status — is still readable).
    #[inline]
    fn is_live_id(&self, id: FlowId) -> bool {
        let s = id.index();
        s < self.slot_gen.len() && self.slot_gen[s] == id.generation()
    }

    /// Cancel a live flow. Completed/cancelled flows are ignored — in
    /// particular a flow whose completion was already batched at the
    /// current instant (its event is still pending delivery) stays
    /// completed: the completion happened at this timestamp.
    pub fn cancel_flow(&mut self, id: FlowId) {
        if !self.is_live_id(id) {
            return;
        }
        match self.flows[id.index()].status {
            FlowStatus::Active => {
                // Freeze progress as of now before the rate disappears.
                self.settle_progress(id);
                let f = &mut self.flows[id.index()];
                f.status = FlowStatus::Cancelled;
                f.rate = 0.0;
                self.flow_epoch[id.index()] = self.flow_epoch[id.index()].wrapping_add(1);
                self.model.on_end(id.index());
                self.detach(id, false);
                self.free_slots.push(id.index() as u32);
                self.live_count -= 1;
                self.stats.flows_cancelled += 1;
            }
            FlowStatus::Pending => {
                let f = &mut self.flows[id.index()];
                f.status = FlowStatus::Cancelled;
                f.rate = 0.0;
                self.model.on_end(id.index());
                self.free_slots.push(id.index() as u32);
                self.live_count -= 1;
                self.stats.flows_cancelled += 1;
            }
            _ => {}
        }
    }

    /// Set a timer firing `delay` seconds from now.
    pub fn set_timer(&mut self, delay: f64, tag: Tag) -> TimerId {
        assert!(delay.is_finite() && delay >= 0.0, "timer delay must be non-negative");
        self.timers.schedule(self.time + delay, TimerKind::User(tag))
    }

    /// Cancel a timer (no-op if already fired).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.timers.cancel(id);
    }

    /// Remaining demand of a flow (0 for completed flows). Progress is
    /// settled lazily, so this derives the up-to-date value from the
    /// flow's rate and last settlement time.
    pub fn flow_remaining(&self, id: FlowId) -> f64 {
        if !self.is_live_id(id) {
            return 0.0;
        }
        let f = &self.flows[id.index()];
        if f.status == FlowStatus::Active && f.rate > 0.0 {
            (f.remaining - f.rate * (self.time - f.last_settled)).max(0.0)
        } else {
            f.remaining.max(0.0)
        }
    }

    /// Current rate of a flow (0 for retired flows). Rates are settled
    /// lazily before each event; call [`Engine::settle_rates`] first to
    /// observe a consistent allocation mid-update.
    pub fn flow_rate(&self, id: FlowId) -> f64 {
        if self.is_live_id(id) {
            self.flows[id.index()].rate
        } else {
            0.0
        }
    }

    /// Status of a flow. Terminal states stay exact until the flow's slot
    /// is recycled by a later start; after that, the flow reads as
    /// [`FlowStatus::Completed`] (cancelled-then-recycled flows collapse
    /// into it — callers needing the distinction must query before
    /// starting new flows).
    pub fn flow_status(&self, id: FlowId) -> FlowStatus {
        if self.is_live_id(id) {
            self.flows[id.index()].status
        } else {
            FlowStatus::Completed
        }
    }

    /// Number of live (pending or active) flows. Completions batched at
    /// the current instant but not yet delivered are already excluded.
    pub fn live_flows(&self) -> usize {
        self.live_count
    }

    /// Re-solve the allocation for every dirty component now, so that
    /// [`Engine::flow_rate`] reflects the current max–min fair shares.
    /// Called automatically by [`Engine::next`]; public so callers (and
    /// the differential property tests) can observe settled rates without
    /// advancing time.
    pub fn settle_rates(&mut self) {
        if self.model.wants_window_update(self.time) {
            self.update_wan_windows();
        }
        if !self.dirty_routeless.is_empty()
            || !self.weak_queue.is_empty()
            || !self.strong_queue.is_empty()
        {
            self.recompute_rates();
        }
    }

    /// Let the bandwidth model evolve its congestion windows to `now`, then
    /// mark the routes of every flow whose effective cap changed strongly so
    /// the settle that follows re-solves them under the new caps.
    fn update_wan_windows(&mut self) {
        let mut changed = std::mem::take(&mut self.wan_changed);
        changed.clear();
        self.model.update_windows(self.time, &mut changed);
        for &slot in &changed {
            if self.flows[slot as usize].status != FlowStatus::Active {
                continue;
            }
            let route = std::mem::take(&mut self.flows[slot as usize].route);
            for &r in route.as_slice() {
                self.mark_strong(r);
            }
            self.flows[slot as usize].route = route;
        }
        self.wan_changed = changed;
    }

    /// Lower bound on the time of the engine's next event, without
    /// delivering anything.
    ///
    /// Settles rates (so completion times are current) and skims stale
    /// completion entries, exactly as [`Engine::next`] would. The value is
    /// a *lower bound*, not necessarily the next delivered event's time: a
    /// pending flow's activation counts (the engine does internal work at
    /// that instant and the events it leads to come no earlier), which is
    /// precisely the conservative guarantee partitioned execution needs.
    /// Returns `None` when no flows or timers remain.
    pub fn peek_time(&mut self) -> Option<f64> {
        if self.pending_head < self.pending_events.len() {
            // The rest of a same-timestamp batch is still due at `now`.
            return Some(self.time);
        }
        self.settle_rates();
        let t_flow = loop {
            match self.completions.peek() {
                None => break f64::INFINITY,
                Some(e) => {
                    let f = &self.flows[e.flow.index()];
                    if f.status == FlowStatus::Active && self.flow_epoch[e.flow.index()] == e.epoch
                    {
                        break e.time;
                    }
                    self.completions.pop();
                    self.stats.event_stale_drops += 1;
                }
            }
        };
        let t = self.timers.peek_time().unwrap_or(f64::INFINITY).min(t_flow);
        t.is_finite().then_some(t)
    }

    /// Advance the clock to `t` without delivering an event.
    ///
    /// `t` must not lie beyond the engine's next event
    /// ([`Engine::peek_time`]); active flows progress lazily, so moving
    /// the clock inside the current inter-event gap is always sound. This
    /// is how partitioned execution injects cross-engine arrivals: advance
    /// to the delivery timestamp, then start flows / set timers there.
    pub fn advance_clock(&mut self, t: f64) {
        assert!(t.is_finite() && t >= self.time, "clock must advance monotonically");
        if let Some(nt) = self.peek_time() {
            assert!(t <= nt, "advance_clock({t}) would skip an event at {nt}");
        }
        self.time = t;
    }

    /// Advance simulated time to the next event and return it, or `None`
    /// when no flows or timers remain.
    #[allow(clippy::should_implement_trait)] // established kernel API name
    pub fn next(&mut self) -> Option<Event> {
        self.next_event(f64::INFINITY)
    }

    /// As [`Engine::next`], but only delivers the event if it occurs
    /// **strictly before** `bound`; otherwise leaves it in place and
    /// returns `None`. Internal work strictly before the bound (flow
    /// activations) is still performed, so a `None` means the next
    /// caller-visible event, if any, is at or after `bound`.
    ///
    /// This is the partitioned-execution primitive: a sharded engine may
    /// only process events inside its conservative safety window.
    pub fn next_before(&mut self, bound: f64) -> Option<Event> {
        self.next_event(bound)
    }

    fn next_event(&mut self, bound: f64) -> Option<Event> {
        // Deliver the rest of the current same-timestamp batch first. A
        // timer the caller set at exactly this instant fires before the
        // remaining completions, preserving the `t_timer <= t_flow` tie
        // rule of sequential delivery.
        while self.pending_head < self.pending_events.len() {
            if self.time >= bound {
                return None;
            }
            match self.timers.peek_time() {
                Some(tt) if tt <= self.time => {
                    let (timer, _, kind) = self.timers.pop().expect("peeked non-empty");
                    match kind {
                        TimerKind::User(tag) => {
                            self.stats.timer_firings += 1;
                            return Some(Event::TimerFired { timer, tag });
                        }
                        TimerKind::ActivateFlow(id) => self.activate_flow(id, self.time),
                    }
                }
                _ => {
                    let ev = self.pending_events[self.pending_head];
                    self.pending_head += 1;
                    if self.pending_head == self.pending_events.len() {
                        self.pending_events.clear();
                        self.pending_head = 0;
                    }
                    return Some(ev);
                }
            }
        }

        loop {
            self.settle_rates();

            // Earliest valid completion from the lazy event list.
            let t_flow = loop {
                match self.completions.peek() {
                    None => break f64::INFINITY,
                    Some(e) => {
                        let f = &self.flows[e.flow.index()];
                        if f.status == FlowStatus::Active
                            && self.flow_epoch[e.flow.index()] == e.epoch
                        {
                            break e.time;
                        }
                        self.completions.pop();
                        self.stats.event_stale_drops += 1;
                    }
                }
            };

            let t_timer = self.timers.peek_time().unwrap_or(f64::INFINITY);

            if t_flow.is_infinite() && t_timer.is_infinite() {
                debug_assert!(
                    self.flows.iter().all(|f| f.status != FlowStatus::Active || f.rate > 0.0),
                    "deadlock: active flows with zero rate and no timers"
                );
                return None;
            }

            if t_timer.min(t_flow) >= bound {
                // Next event lies outside the caller's window: deliver
                // nothing and leave the clock inside the window.
                return None;
            }

            if t_timer <= t_flow {
                self.advance_to(t_timer);
                let (timer, _, kind) = self.timers.pop().expect("peeked non-empty");
                match kind {
                    TimerKind::User(tag) => {
                        self.stats.timer_firings += 1;
                        return Some(Event::TimerFired { timer, tag });
                    }
                    TimerKind::ActivateFlow(id) => {
                        self.activate_flow(id, t_timer);
                        // Gulp every further activation at this exact
                        // instant into the same settle pass (latency
                        // timers of simultaneous chunk reissues expire
                        // together).
                        while let Some(id2) = self.timers.pop_activation_at(t_timer) {
                            self.activate_flow(id2, t_timer);
                            self.stats.batched_activations += 1;
                        }
                        continue;
                    }
                }
            } else {
                // Batch-pop every valid completion at this timestamp: the
                // first is returned directly (so size-1 batches — the tiny-
                // simulation steady state — bypass the buffer entirely),
                // the rest are delivered by subsequent calls.
                let first = self.completions.pop().expect("valid entry peeked above");
                self.advance_to(first.time);
                let t = first.time;
                let tag = self.complete_flow(first.flow, t);
                let first_ev = Event::FlowCompleted { flow: first.flow, tag };
                let mut extra = 0u64;
                loop {
                    let e = match self.completions.peek() {
                        Some(&e) if e.time == t => e,
                        _ => break,
                    };
                    self.completions.pop();
                    let f = &self.flows[e.flow.index()];
                    if f.status == FlowStatus::Active && self.flow_epoch[e.flow.index()] == e.epoch
                    {
                        let tag = self.complete_flow(e.flow, t);
                        self.pending_events.push(Event::FlowCompleted { flow: e.flow, tag });
                        extra += 1;
                    } else {
                        self.stats.event_stale_drops += 1;
                    }
                }
                if extra > 0 {
                    self.stats.batched_settles += 1;
                    self.stats.batched_completions += extra + 1;
                }
                return Some(first_ev);
            }
        }
    }

    /// Run the simulation to completion, discarding events. Returns the
    /// final time. Mostly useful in tests.
    pub fn drain(&mut self) -> f64 {
        while self.next().is_some() {}
        self.time
    }

    /// Transition a pending flow to active at `t` (its latency elapsed)
    /// and hook it into the allocation. Cancelled (possibly recycled)
    /// flows are skipped.
    fn activate_flow(&mut self, id: FlowId, t: f64) {
        if self.is_live_id(id) && self.flows[id.index()].status == FlowStatus::Pending {
            self.flows[id.index()].status = FlowStatus::Active;
            self.flows[id.index()].last_settled = t;
            self.attach(id);
        }
    }

    /// Finalize a flow whose completion time arrived: settle it at zero
    /// remaining, detach it, and offer it as a swap candidate for the
    /// current batch. Returns the flow's tag for event delivery.
    fn complete_flow(&mut self, id: FlowId, t: f64) -> Tag {
        let f = &mut self.flows[id.index()];
        debug_assert_eq!(f.status, FlowStatus::Active);
        let rate = f.rate;
        f.remaining = 0.0;
        f.last_settled = t;
        f.rate = 0.0;
        f.status = FlowStatus::Completed;
        let tag = f.tag;
        let rate_cap = f.rate_cap;
        self.flow_epoch[id.index()] = self.flow_epoch[id.index()].wrapping_add(1);
        // A dynamically-capped flow's departure changes the queue occupancy
        // every co-bottlenecked flow sees, so it must mark strongly and must
        // not offer its (stale-capped) rate for inheritance.
        let dynamic = self.model.is_dynamic(id.index());
        self.model.on_end(id.index());
        self.detach(id, !dynamic);
        let route = std::mem::take(&mut self.flows[id.index()].route);
        if !route.is_empty() && !dynamic {
            // Route-less completions leave no dirty marks and their
            // reissues are O(1) anyway; only routed ones need candidates.
            self.batch_candidates.push(SwapCandidate { route, rate_cap, rate });
        }
        self.free_slots.push(id.index() as u32);
        self.live_count -= 1;
        self.stats.flow_completions += 1;
        tag
    }

    /// Hook a flow inheriting a swap candidate's rate into the incidence
    /// index *without* marking anything dirty: the candidate guarantees
    /// the allocation is unchanged, and its twin's dirty marks remain in
    /// place until the batch verdict at the next settle.
    fn inherit_attach(&mut self, id: FlowId) {
        let route = std::mem::take(&mut self.flows[id.index()].route);
        debug_assert!(!route.is_empty());
        self.n_active_routed += 1;
        self.note_attach_route(&route);
        for (hop, &r) in route.as_slice().iter().enumerate() {
            self.index_on(id, hop, r);
        }
        self.flows[id.index()].route = route;
    }

    /// Append one incidence entry, recording its position for O(1) removal.
    #[inline]
    fn index_on(&mut self, id: FlowId, hop: usize, r: ResourceId) {
        let on = &mut self.flows_on[r.index()];
        if hop < Route::INLINE {
            self.flow_pos[id.index()][hop] = on.len() as u32;
        }
        on.push(OnEntry { flow: id, hop: hop as u32 });
    }

    /// Hook a newly-active flow into the incidence index and mark the
    /// touched part of the allocation strongly dirty.
    fn attach(&mut self, id: FlowId) {
        debug_assert_eq!(self.flows[id.index()].status, FlowStatus::Active);
        if self.flows[id.index()].route.is_empty() {
            // A route-less flow shares nothing, so it cannot change the
            // routed multiset: pending swap candidates stay valid.
            self.dirty_routeless.push(id);
            return;
        }
        self.n_active_routed += 1;
        let route = std::mem::take(&mut self.flows[id.index()].route);
        self.note_attach_route(&route);
        for (hop, &r) in route.as_slice().iter().enumerate() {
            self.index_on(id, hop, r);
            self.mark_strong(r);
        }
        self.flows[id.index()].route = route;
    }

    /// Membership-cache maintenance for a routed attach. A route lying
    /// entirely inside one cached resource set keeps that set closed (the
    /// new flow adds no outside connectivity), so the cache stays valid;
    /// any other shape — spanning two cached sets, or touching an uncached
    /// resource — may merge components, so every cached set the route
    /// touches is retired. Detaches need no bookkeeping: removing a flow
    /// can only *split* a component, and solving the cached superset
    /// jointly is still exact.
    fn note_attach_route(&mut self, route: &Route) {
        let hops = route.as_slice();
        if let Some(first) = self.comp_label_of(hops[0]) {
            if hops[1..].iter().all(|&r| self.comp_label_of(r) == Some(first)) {
                return;
            }
        }
        for &r in hops {
            self.invalidate_comp(r);
        }
    }

    /// The resource's membership label, if it still points at a live slot.
    #[inline]
    fn comp_label_of(&self, r: ResourceId) -> Option<CompLabel> {
        let label = self.res_comp[r.index()];
        let s = label.slot as usize;
        (s < self.comp_cache.len() && self.comp_cache[s].stamp == label.stamp).then_some(label)
    }

    /// Retire the cached membership `r` belongs to (no-op when none).
    fn invalidate_comp(&mut self, r: ResourceId) {
        if let Some(label) = self.comp_label_of(r) {
            let s = label.slot as usize;
            self.comp_cache[s].stamp += 1;
            self.comp_cache[s].resources.clear();
            self.free_comp_slots.push(label.slot);
        }
    }

    /// Remove a no-longer-active flow from the incidence index. Batched
    /// completions mark their resources *weakly* (`weak: true`) — the
    /// change is allocation-neutral if the flow's swap candidate gets
    /// matched; cancellations mark strongly.
    fn detach(&mut self, id: FlowId, weak: bool) {
        let route = std::mem::take(&mut self.flows[id.index()].route);
        if !route.is_empty() {
            self.n_active_routed -= 1;
        }
        for (hop, &r) in route.as_slice().iter().enumerate() {
            let pos = if hop < Route::INLINE {
                self.flow_pos[id.index()][hop] as usize
            } else {
                // Spilled long routes: positions beyond the inline window
                // are not tracked; fall back to a scan.
                self.flows_on[r.index()]
                    .iter()
                    .position(|e| e.flow == id && e.hop as usize == hop)
                    .expect("flow indexed on its route")
            };
            let on = &mut self.flows_on[r.index()];
            debug_assert!(on[pos].flow == id && on[pos].hop as usize == hop);
            on.swap_remove(pos);
            if pos < on.len() {
                let moved = on[pos];
                if (moved.hop as usize) < Route::INLINE {
                    self.flow_pos[moved.flow.index()][moved.hop as usize] = pos as u32;
                }
            }
            if weak {
                self.mark_weak(r);
            } else {
                self.mark_strong(r);
            }
        }
        self.flows[id.index()].route = route;
    }

    /// Drop all weak dirty marks without solving, counting one clean-batch
    /// settle. Callers must have established that every weak mark belongs
    /// to a matched completion/reissue pair (no strong marks, no unmatched
    /// candidates): the allocation is provably unchanged.
    fn discard_weak_marks(&mut self) {
        debug_assert!(self.strong_queue.is_empty() && self.batch_candidates.is_empty());
        if !self.weak_queue.is_empty() {
            self.stats.clean_batch_settles += 1;
            for k in 0..self.weak_queue.len() {
                let r = self.weak_queue[k];
                self.dirty_res[r.index()] = 0;
            }
            self.weak_queue.clear();
        }
    }

    #[inline]
    fn mark_weak(&mut self, r: ResourceId) {
        if self.dirty_res[r.index()] == 0 {
            self.dirty_res[r.index()] = 1;
            self.weak_queue.push(r);
        }
    }

    #[inline]
    fn mark_strong(&mut self, r: ResourceId) {
        if self.dirty_res[r.index()] != 2 {
            self.dirty_res[r.index()] = 2;
            self.strong_queue.push(r);
        }
    }

    /// Advance the clock. Flow progress is settled lazily (see the module
    /// docs), so this touches no per-flow state.
    fn advance_to(&mut self, t: f64) {
        debug_assert!(t >= self.time - 1e-12, "time went backwards: {} -> {t}", self.time);
        self.time = self.time.max(t);
    }

    /// Bring a flow's `remaining` up to date with the clock.
    fn settle_progress(&mut self, id: FlowId) {
        let t = self.time;
        let f = &mut self.flows[id.index()];
        if f.rate > 0.0 && t > f.last_settled {
            f.remaining = (f.remaining - f.rate * (t - f.last_settled)).max(0.0);
        }
        f.last_settled = t;
    }

    /// Assign a flow's rate, settling its progress and (re)scheduling its
    /// completion. Skips entirely when the rate is unchanged: the
    /// completion prediction `last_settled + remaining/rate` is invariant
    /// under clock advances at a constant rate.
    fn set_rate(&mut self, id: FlowId, rate: f64) {
        if self.flows[id.index()].rate == rate {
            return;
        }
        self.settle_progress(id);
        self.flows[id.index()].rate = rate;
        self.schedule_completion(id);
    }

    /// Push a fresh completion entry for an active flow with its current
    /// (settled) remaining and rate, invalidating any previous entry.
    fn schedule_completion(&mut self, id: FlowId) {
        let f = &self.flows[id.index()];
        debug_assert_eq!(f.status, FlowStatus::Active);
        debug_assert_eq!(f.last_settled, self.time, "schedule requires settled progress");
        if f.rate <= 0.0 {
            return;
        }
        let remaining = if f.is_done() { 0.0 } else { f.remaining };
        let time = self.time + remaining / f.rate;
        let epoch = self.flow_epoch[id.index()].wrapping_add(1);
        self.flow_epoch[id.index()] = epoch;
        self.completions.push(CompletionEntry { time, flow: id, epoch });
    }

    fn recompute_rates(&mut self) {
        self.stats.rate_recomputes += 1;

        // Route-less flows are singleton components: rate = cap (or the
        // solver's unconstrained maximum), assigned in O(1).
        while let Some(id) = self.dirty_routeless.pop() {
            if self.is_live_id(id) && self.flows[id.index()].status == FlowStatus::Active {
                let cap = self.model.effective_cap(id.index(), self.flows[id.index()].rate_cap);
                let rate = if cap.is_finite() { cap } else { MAX_RATE };
                self.set_rate(id, rate);
                self.stats.routeless_assigns += 1;
            }
        }

        // Unmatched candidates are completions that really changed the
        // allocation: escalate their weak marks to strong. (Settling also
        // consumes the candidates — one surviving past here would inherit
        // a stale rate.)
        if !self.batch_candidates.is_empty() {
            let mut cands = std::mem::take(&mut self.batch_candidates);
            for c in cands.drain(..) {
                for &r in c.route.as_slice() {
                    self.mark_strong(r);
                }
            }
            self.batch_candidates = cands; // keep the allocation
        }

        if self.strong_queue.is_empty() {
            // Every mark is weak: a fully-matched batch. The allocation is
            // provably unchanged — discard the marks with no solve.
            self.discard_weak_marks();
            return;
        }

        // Walk each strongly-dirty connected component once and re-solve
        // it. Weak marks inside those components are consumed by the walk;
        // weak marks elsewhere are allocation-neutral and dropped after.
        self.visit_gen += 1;
        let gen = self.visit_gen;
        while let Some(r0) = self.strong_queue.pop() {
            if self.dirty_res[r0.index()] == 0 {
                continue; // already solved as part of an earlier component
            }
            let info = match self.try_cached_component(r0, gen) {
                Some(info) => info,
                None => {
                    let info = self.collect_component(r0, gen);
                    self.capture_component();
                    info
                }
            };
            for k in 0..self.comp_resources.len() {
                self.dirty_res[self.comp_resources[k].index()] = 0;
            }
            self.stats.component_solves += 1;
            self.stats.flows_resolved += self.comp_flows.len() as u64;
            if self.comp_flows.len() >= self.n_active_routed {
                self.stats.full_solves += 1;
            }
            if self.comp_flows.is_empty() {
                continue;
            }
            if self.comp_resources.len() == 1 && self.solve_single_resource(&info) {
                continue;
            }
            if self.comp_resources.len() > 1 {
                if self.try_warm_refill(&info) {
                    continue;
                }
                if self.comp_resources.len() == 2 && !info.has_cap && self.try_two_resource() {
                    continue;
                }
            }
            self.solve_general(gen);
        }

        // Remaining weak marks belong to matched completion/reissue pairs
        // in components no strong change reached: allocation-neutral.
        for k in 0..self.weak_queue.len() {
            let r = self.weak_queue[k];
            self.dirty_res[r.index()] = 0;
        }
        self.weak_queue.clear();
    }

    /// Closed-form max–min for the most common component shape: a single
    /// resource. Without binding caps every flow runs at
    /// `effective_capacity / n_shares`; with caps, a sorted sweep freezes
    /// capped flows in ascending order exactly as progressive filling
    /// would. Returns `false` (punting to the general solver) only for the
    /// pathological duplicate-route-entry case with binding caps.
    fn solve_single_resource(&mut self, info: &CompInfo) -> bool {
        let r = self.comp_resources[0];
        let n = self.flows_on[r.index()].len();
        debug_assert!(n > 0, "non-empty component has flows on its resource");
        // `n` counts route occurrences: a flow listing the resource twice
        // consumes two shares but still runs at one share's rate, exactly
        // as in the general solver.
        let share = self.resources[r.index()].capacity.effective(n).max(0.0) / n as f64;
        if info.min_cap >= share {
            // No cap binds: the uniform fair share.
            self.stats.closed_form_solves += 1;
            for k in 0..self.comp_flows.len() {
                let fid = self.comp_flows[k];
                self.set_rate(fid, share);
            }
            return true;
        }
        if n != self.comp_flows.len() {
            return false; // duplicate entries with binding caps: general solver
        }
        // Sorted cap sweep: freeze caps below the running share (each such
        // freeze only raises the share), then give the rest the remainder.
        self.stats.closed_form_solves += 1;
        self.cap_sort.clear();
        for (k, &fid) in self.comp_flows.iter().enumerate() {
            let cap = self.model.effective_cap(fid.index(), self.flows[fid.index()].rate_cap);
            self.cap_sort.push((cap, k as u32));
        }
        self.cap_sort.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut rem = self.resources[r.index()].capacity.effective(n);
        let mut left = n;
        let mut i = 0usize;
        while i < self.cap_sort.len() {
            let share = rem.max(0.0) / left as f64;
            let (c, k) = self.cap_sort[i];
            if c > share {
                break;
            }
            self.set_rate(self.comp_flows[k as usize], c);
            rem = (rem - c).max(0.0);
            left -= 1;
            i += 1;
        }
        if i < self.cap_sort.len() {
            let share = rem.max(0.0) / left as f64;
            for j in i..self.cap_sort.len() {
                let (_, k) = self.cap_sort[j];
                self.set_rate(self.comp_flows[k as usize], share);
            }
        }
        true
    }

    /// Warm-start re-fill: if some component resource was the sole
    /// bottleneck of its previous solve, try the uniform allocation
    /// `share = eff / n` against it and verify in one pass that (a) every
    /// component flow crosses it exactly once, (b) no cap binds, and
    /// (c) every other resource stays feasible. When the verification
    /// holds, that allocation *is* the max–min (all rates equal and a
    /// common saturated bottleneck), assigned without progressive filling.
    /// This is the ±k-flow steady state of the big shared WAN component.
    fn try_warm_refill(&mut self, info: &CompInfo) -> bool {
        let mut cand = None;
        for &r in &self.comp_resources {
            if self.warm_bneck[r.index()] {
                cand = Some(r);
                break;
            }
        }
        let Some(r) = cand else { return false };
        let n = self.flows_on[r.index()].len();
        if n != self.comp_flows.len() {
            return false;
        }
        for &fid in &self.comp_flows {
            let hits = self.flows[fid.index()].route.as_slice().iter().filter(|&&h| h == r).count();
            if hits != 1 {
                return false;
            }
        }
        let share = self.resources[r.index()].capacity.effective(n).max(0.0) / n as f64;
        if info.min_cap < share {
            return false;
        }
        for &q in &self.comp_resources {
            if q == r {
                continue;
            }
            let m = self.flows_on[q.index()].len();
            if share * m as f64 > self.resources[q.index()].capacity.effective(m) {
                return false;
            }
        }
        self.stats.warm_refills += 1;
        for k in 0..self.comp_flows.len() {
            let fid = self.comp_flows[k];
            self.set_rate(fid, share);
        }
        true
    }

    /// Closed-form max–min for an uncapped two-resource component with no
    /// duplicate route entries: at most two progressive-filling rounds,
    /// solved directly. Returns `false` to punt odd shapes to the general
    /// solver.
    fn try_two_resource(&mut self) -> bool {
        let a = self.comp_resources[0];
        let b = self.comp_resources[1];
        let na = self.flows_on[a.index()].len();
        let nb = self.flows_on[b.index()].len();
        if na == 0 || nb == 0 {
            return false;
        }
        let mut n_both = 0usize;
        for &fid in &self.comp_flows {
            match *self.flows[fid.index()].route.as_slice() {
                [x] if x == a || x == b => {}
                [x, y] if (x == a && y == b) || (x == b && y == a) => n_both += 1,
                _ => return false, // duplicates or foreign hops
            }
        }
        self.stats.closed_form_solves += 1;
        let eff_a = self.resources[a.index()].capacity.effective(na);
        let eff_b = self.resources[b.index()].capacity.effective(nb);
        let sa = eff_a.max(0.0) / na as f64;
        let sb = eff_b.max(0.0) / nb as f64;
        // First bottleneck: the smaller share; ties pick `a`, matching the
        // general solver's strict-less argmin over local indices.
        let (s1, second, eff2, n2_entries) =
            if sb < sa { (sb, a, eff_a, na) } else { (sa, b, eff_b, nb) };
        // Round 2 share for flows only on `second`, after the crossing
        // flows' frozen bandwidth is released (clamped per subtraction,
        // as the general solver does).
        let n2_only = n2_entries - n_both;
        let mut rem2 = eff2;
        for _ in 0..n_both {
            rem2 = (rem2 - s1).max(0.0);
        }
        let s2 = if n2_only > 0 { rem2.max(0.0) / n2_only as f64 } else { 0.0 };
        for k in 0..self.comp_flows.len() {
            let fid = self.comp_flows[k];
            let only_second = matches!(*self.flows[fid.index()].route.as_slice(),
                [x] if x == second);
            let rate = if only_second { s2 } else { s1 };
            self.set_rate(fid, rate);
        }
        true
    }

    /// Rebuild `comp_resources` / `comp_flows` for `r0`'s component from
    /// its cached membership, skipping the BFS. Valid whenever `r0`'s
    /// label still points at a live slot: no attach has crossed the cached
    /// set's boundary since capture, so the set is still closed under the
    /// incidence relation and gathering each member resource's current
    /// flows reproduces the component (possibly as a superset union of
    /// post-split components, which solves to the same rates). The flow
    /// list itself is always gathered fresh — only the resource-discovery
    /// walk (the route-chasing part of the BFS) is skipped.
    fn try_cached_component(&mut self, r0: ResourceId, gen: u64) -> Option<CompInfo> {
        let label = self.comp_label_of(r0)?;
        self.stats.memb_cache_hits += 1;
        self.comp_resources.clear();
        self.comp_flows.clear();
        let mut info = CompInfo { has_cap: false, min_cap: f64::INFINITY };
        let slot = label.slot as usize;
        let n = self.comp_cache[slot].resources.len();
        debug_assert!(n > 0, "live slots hold at least their capture root");
        for k in 0..n {
            let r = self.comp_cache[slot].resources[k];
            self.res_mark[r.index()] = gen;
            self.res_local[r.index()] = k;
            self.comp_resources.push(r);
        }
        for k in 0..n {
            let r = self.comp_resources[k];
            for j in 0..self.flows_on[r.index()].len() {
                let fid = self.flows_on[r.index()][j].flow;
                if self.flow_mark[fid.index()] == gen {
                    continue;
                }
                self.flow_mark[fid.index()] = gen;
                self.comp_flows.push(fid);
                let cap = self.model.effective_cap(fid.index(), self.flows[fid.index()].rate_cap);
                info.min_cap = info.min_cap.min(cap);
            }
        }
        info.has_cap = info.min_cap < f64::INFINITY;
        Some(info)
    }

    /// Store the just-walked component's resource set in the membership
    /// cache and label its resources. Every walked resource necessarily
    /// had a dead label (a live one would have answered the walk from the
    /// cache), so capturing never strands a live slot.
    fn capture_component(&mut self) {
        let s = match self.free_comp_slots.pop() {
            Some(s) => s as usize,
            None => {
                self.comp_cache.push(CompSlot::default());
                self.comp_cache.len() - 1
            }
        };
        self.comp_cache[s].stamp += 1;
        let stamp = self.comp_cache[s].stamp;
        let mut resources = std::mem::take(&mut self.comp_cache[s].resources);
        resources.clear();
        resources.extend_from_slice(&self.comp_resources);
        for &r in &resources {
            self.res_comp[r.index()] = CompLabel { slot: s as u32, stamp };
        }
        self.comp_cache[s].resources = resources;
        self.stats.memb_cache_builds += 1;
    }

    /// Breadth-first walk of the flow/resource bipartite graph from `r0`,
    /// filling `comp_resources` / `comp_flows` with the connected
    /// component and stamping visit marks with `gen`. Returns the
    /// component's shape summary.
    fn collect_component(&mut self, r0: ResourceId, gen: u64) -> CompInfo {
        self.comp_resources.clear();
        self.comp_flows.clear();
        self.comp_stack.clear();
        self.comp_stack.push(r0);
        self.res_mark[r0.index()] = gen;
        let mut info = CompInfo { has_cap: false, min_cap: f64::INFINITY };
        while let Some(r) = self.comp_stack.pop() {
            self.res_local[r.index()] = self.comp_resources.len();
            self.comp_resources.push(r);
            for k in 0..self.flows_on[r.index()].len() {
                let fid = self.flows_on[r.index()][k].flow;
                if self.flow_mark[fid.index()] == gen {
                    continue;
                }
                self.flow_mark[fid.index()] = gen;
                self.comp_flows.push(fid);
                let cap = self.model.effective_cap(fid.index(), self.flows[fid.index()].rate_cap);
                info.min_cap = info.min_cap.min(cap);
                let route = std::mem::take(&mut self.flows[fid.index()].route);
                for &r2 in route.as_slice() {
                    if self.res_mark[r2.index()] != gen {
                        self.res_mark[r2.index()] = gen;
                        self.comp_stack.push(r2);
                    }
                }
                self.flows[fid.index()].route = route;
            }
        }
        info.has_cap = info.min_cap < f64::INFINITY;
        info
    }

    /// General max–min solve restricted to the collected component via the
    /// allocation-free scratch solver, writing the resulting rates back
    /// into the flow table and updating the warm-start flags.
    fn solve_general(&mut self, gen: u64) {
        {
            let Engine {
                ref mut scratch,
                ref flows,
                ref flows_on,
                ref resources,
                ref comp_resources,
                ref comp_flows,
                ref res_local,
                ref res_mark,
                ref model,
                ..
            } = *self;
            scratch.clear();
            for &r in comp_resources {
                let n = flows_on[r.index()].len();
                scratch.push_resource(resources[r.index()].capacity.effective(n));
            }
            for &fid in comp_flows {
                let f = &flows[fid.index()];
                debug_assert!(f.route.as_slice().iter().all(|r| res_mark[r.index()] == gen));
                scratch.push_flow_raw(
                    model.effective_cap(fid.index(), f.rate_cap),
                    f.route.as_slice().iter().map(|r| res_local[r.index()]),
                );
            }
            scratch.solve();
        }
        let sole = self.scratch.sole_bottleneck();
        for local in 0..self.comp_resources.len() {
            let r = self.comp_resources[local];
            self.warm_bneck[r.index()] = Some(local) == sole;
        }
        for k in 0..self.comp_flows.len() {
            let fid = self.comp_flows[k];
            let rate = self.scratch.rates[k];
            self.set_rate(fid, rate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceSpec;
    use crate::wan::FlowLevelParams;

    #[test]
    fn single_flow_duration_is_demand_over_capacity() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(1)));
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(1));
        assert!((e.now() - 10.0).abs() < 1e-9);
        assert!(e.next().is_none());
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        // Flow A: 100 units, flow B: 50 units on a 10-capacity resource.
        // Phase 1: both at rate 5 until B finishes at t=10.
        // Phase 2: A at rate 10 for its remaining 50 units -> done at t=15.
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(0xA)));
        e.start_flow(FlowSpec::new(50.0, &[r], Tag(0xB)));
        let ev1 = e.next().unwrap();
        assert_eq!(ev1.tag(), Tag(0xB));
        assert!((e.now() - 10.0).abs() < 1e-9);
        let ev2 = e.next().unwrap();
        assert_eq!(ev2.tag(), Tag(0xA));
        assert!((e.now() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn latency_delays_start() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(1)).with_latency(2.5));
        e.next().unwrap();
        assert!((e.now() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn rate_cap_limits_single_flow() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(100.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(1)).with_cap(4.0));
        e.next().unwrap();
        assert!((e.now() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn timers_interleave_with_flows() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(1)));
        e.set_timer(4.0, Tag(99));
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(99));
        assert!((e.now() - 4.0).abs() < 1e-9);
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(1));
        assert!((e.now() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn flow_added_midway_shares_remaining() {
        // A starts alone at rate 10. At t=5, B (50 units) arrives; both run
        // at 5. A has 50 left at t=5 -> both finish at t=15.
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(0xA)));
        e.set_timer(5.0, Tag(0));
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(0));
        e.start_flow(FlowSpec::new(50.0, &[r], Tag(0xB)));
        let t1 = e.next().unwrap();
        let t2 = e.next().unwrap();
        assert!((e.now() - 15.0).abs() < 1e-9);
        let tags = [t1.tag().0, t2.tag().0];
        assert!(tags.contains(&0xA) && tags.contains(&0xB));
    }

    #[test]
    fn cancel_flow_frees_bandwidth() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        let a = e.start_flow(FlowSpec::new(100.0, &[r], Tag(0xA)));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(0xB)));
        e.set_timer(2.0, Tag(0));
        e.next().unwrap(); // timer at t=2; both flows have 90 left
        e.cancel_flow(a);
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(0xB));
        // B had 90 left at t=2, now alone at rate 10 -> finishes at t=11.
        assert!((e.now() - 11.0).abs() < 1e-9, "now={}", e.now());
        assert_eq!(e.flow_status(a), FlowStatus::Cancelled);
    }

    #[test]
    fn cancel_pending_flow_never_activates() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        let a = e.start_flow(FlowSpec::new(100.0, &[r], Tag(0xA)).with_latency(1.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(0xB)));
        e.cancel_flow(a);
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(0xB));
        assert!((e.now() - 10.0).abs() < 1e-9, "B alone at rate 10, now={}", e.now());
        assert_eq!(e.flow_status(a), FlowStatus::Cancelled);
    }

    #[test]
    fn zero_demand_flow_completes_immediately() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(0.0, &[r], Tag(1)));
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(1));
        assert_eq!(e.now(), 0.0);
    }

    #[test]
    fn degrading_resource_slows_under_load() {
        // base 20, alpha 1.0: two flows -> aggregate 20*2/3 = 13.33, each 6.67.
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::degrading(20.0, 1.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(1)));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(2)));
        e.next().unwrap();
        let expected = 100.0 / (20.0 * 2.0 / 3.0 / 2.0);
        assert!((e.now() - expected).abs() < 1e-6, "now={} expected={expected}", e.now());
    }

    #[test]
    fn multi_resource_route_bound_by_tightest() {
        let mut e = Engine::new();
        let fast = e.add_resource(ResourceSpec::constant(100.0));
        let slow = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[fast, slow], Tag(1)));
        e.next().unwrap();
        assert!((e.now() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn drain_returns_final_time() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(1.0));
        e.start_flow(FlowSpec::new(3.0, &[r], Tag(1)));
        e.start_flow(FlowSpec::new(5.0, &[r], Tag(2)));
        let t = e.drain();
        assert!((t - 8.0).abs() < 1e-9); // work-conserving: total 8 units at rate 1
    }

    #[test]
    fn stats_count_events() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(1.0));
        e.start_flow(FlowSpec::new(1.0, &[r], Tag(1)));
        e.set_timer(0.5, Tag(2));
        e.drain();
        let s = e.stats();
        assert_eq!(s.flow_completions, 1);
        assert_eq!(s.timer_firings, 1);
        assert_eq!(s.flows_started, 1);
        assert_eq!(s.resources, 1);
        assert_eq!(s.events(), 2);
    }

    #[test]
    fn simultaneous_completions_all_delivered() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        for i in 0..4 {
            e.start_flow(FlowSpec::new(25.0, &[r], Tag(i)));
        }
        let mut tags = Vec::new();
        while let Some(ev) = e.next() {
            assert!((e.now() - 10.0).abs() < 1e-9);
            tags.push(ev.tag().0);
        }
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 1, 2, 3]);
        // The four simultaneous completions were drained as one batch.
        let s = e.stats();
        assert_eq!(s.batched_settles, 1);
        assert_eq!(s.batched_completions, 4);
    }

    #[test]
    fn fully_matched_batch_settles_without_solve() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        for i in 0..4 {
            e.start_flow(FlowSpec::new(25.0, &[r], Tag(i)));
        }
        e.settle_rates();
        let base = e.stats();
        // All four complete at t=10; reissue an identical flow per event.
        for _ in 0..4 {
            let ev = e.next().unwrap();
            e.start_flow(FlowSpec::new(25.0, &[r], Tag(10 + ev.tag().0)));
        }
        e.settle_rates();
        let s = e.stats();
        assert_eq!(s.swap_inherits, 4, "every reissue inherited its twin's rate");
        assert_eq!(s.batched_settles - base.batched_settles, 1);
        assert_eq!(s.clean_batch_settles, 1, "matched batch settled with no solve");
        assert_eq!(s.component_solves, base.component_solves);
    }

    #[test]
    fn simultaneous_activations_share_one_settle() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(12.0));
        for i in 0..3 {
            e.start_flow(FlowSpec::new(12.0, &[r], Tag(i)).with_latency(1.0));
        }
        // All three activate at t=1 (rate 4 each) and finish at t=4.
        let ev = e.next().unwrap();
        assert!((e.now() - 4.0).abs() < 1e-9, "now={}", e.now());
        let s = e.stats();
        assert_eq!(s.batched_activations, 2, "two activations gulped with the first");
        assert_eq!(s.component_solves, 1, "one solve for the whole activation burst");
        let _ = ev;
    }

    #[test]
    fn warm_refill_serves_stable_bottleneck_component() {
        // WAN-like shape: a shared bottleneck plus per-node links.
        let mut e = Engine::new();
        let wan = e.add_resource(ResourceSpec::constant(10.0));
        let l1 = e.add_resource(ResourceSpec::constant(100.0));
        let l2 = e.add_resource(ResourceSpec::constant(100.0));
        e.start_flow(FlowSpec::new(50.0, &[wan, l1], Tag(1)));
        e.start_flow(FlowSpec::new(80.0, &[wan, l2], Tag(2)));
        e.settle_rates(); // full solve; wan detected as sole bottleneck
        assert_eq!(e.stats().warm_refills, 0);
        // Membership changes by +1 flow: the next solve is a warm re-fill.
        e.start_flow(FlowSpec::new(80.0, &[wan, l2], Tag(3)));
        e.settle_rates();
        let s = e.stats();
        assert_eq!(s.warm_refills, 1);
        for i in 0..3 {
            assert!((e.flow_rate(FlowId(i)) - 10.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn warm_refill_bails_when_link_becomes_bottleneck() {
        let mut e = Engine::new();
        let wan = e.add_resource(ResourceSpec::constant(10.0));
        let l1 = e.add_resource(ResourceSpec::constant(4.0));
        let l2 = e.add_resource(ResourceSpec::constant(100.0));
        e.start_flow(FlowSpec::new(50.0, &[wan, l2], Tag(1)));
        e.start_flow(FlowSpec::new(80.0, &[wan, l2], Tag(2)));
        e.settle_rates(); // wan flagged as sole bottleneck (5 each)
                          // The newcomer crosses the tiny l1: uniform share 10/3 would
                          // exceed l1's capacity 4? No - 3.33 < 4. Use a smaller l1 share:
                          // two flows through l1 at share 10/4=2.5 each... keep it simple:
                          // add two flows on l1 so l1's load at wan-uniform share busts it.
        e.start_flow(FlowSpec::new(80.0, &[wan, l1], Tag(3)));
        e.start_flow(FlowSpec::new(80.0, &[wan, l1], Tag(4)));
        e.settle_rates();
        // Uniform share would be 10/4 = 2.5; l1 load 2*2.5 = 5 > 4, so the
        // warm path must bail and the full solver give l1's flows 2 each.
        let s = e.stats();
        assert_eq!(s.warm_refills, 0);
        assert!((e.flow_rate(FlowId(2)) - 2.0).abs() < 1e-9);
        assert!((e.flow_rate(FlowId(3)) - 2.0).abs() < 1e-9);
        assert!((e.flow_rate(FlowId(0)) - 3.0).abs() < 1e-9, "rest split the remaining wan");
        assert!((e.flow_rate(FlowId(1)) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn two_resource_component_closed_form() {
        let mut e = Engine::new();
        let a = e.add_resource(ResourceSpec::constant(10.0));
        let b = e.add_resource(ResourceSpec::constant(100.0));
        e.start_flow(FlowSpec::new(1e3, &[a, b], Tag(1)));
        e.start_flow(FlowSpec::new(1e3, &[a], Tag(2)));
        e.start_flow(FlowSpec::new(1e3, &[b], Tag(3)));
        e.settle_rates();
        let s = e.stats();
        assert_eq!(s.closed_form_solves, 1);
        assert!((e.flow_rate(FlowId(0)) - 5.0).abs() < 1e-9);
        assert!((e.flow_rate(FlowId(1)) - 5.0).abs() < 1e-9);
        assert!((e.flow_rate(FlowId(2)) - 95.0).abs() < 1e-9);
    }

    #[test]
    fn capped_single_resource_closed_form() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(30.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(1)).with_cap(3.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(2)).with_cap(50.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(3)));
        e.settle_rates();
        let s = e.stats();
        assert_eq!(s.closed_form_solves, 1);
        assert_eq!(s.component_solves, 1);
        assert!((e.flow_rate(FlowId(0)) - 3.0).abs() < 1e-12, "tight cap binds");
        assert!((e.flow_rate(FlowId(1)) - 13.5).abs() < 1e-9, "(30-3)/2 each");
        assert!((e.flow_rate(FlowId(2)) - 13.5).abs() < 1e-9);
    }

    #[test]
    fn uniform_caps_bind_in_closed_form() {
        // The storage-service shape: one resource, equal per-connection caps.
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(100.0));
        for i in 0..4 {
            e.start_flow(FlowSpec::new(10.0, &[r], Tag(i)).with_cap(5.0));
        }
        e.settle_rates();
        for i in 0..4 {
            assert!((e.flow_rate(FlowId(i)) - 5.0).abs() < 1e-12);
        }
        assert_eq!(e.stats().closed_form_solves, 1);
    }

    #[test]
    fn disjoint_components_solve_independently() {
        // Two resources with no shared flows: completing a flow on one must
        // re-solve only that component.
        let mut e = Engine::new();
        let r1 = e.add_resource(ResourceSpec::constant(10.0));
        let r2 = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r1], Tag(1)));
        e.start_flow(FlowSpec::new(100.0, &[r1], Tag(2)));
        e.start_flow(FlowSpec::new(50.0, &[r2], Tag(3)));
        e.settle_rates();
        let s0 = e.stats();
        // One settle pass; r1 and r2 are separate components.
        assert_eq!(s0.component_solves, 2);
        assert_eq!(s0.full_solves, 0, "neither component spans all routed flows");

        // Completing the r2 flow (t=5) must only re-solve r2's component.
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(3));
        e.settle_rates();
        let s1 = e.stats();
        assert_eq!(s1.component_solves - s0.component_solves, 1);
        assert_eq!(s1.flows_resolved - s0.flows_resolved, 0, "r2's component is now empty");
        // r1's flows kept their old rate without a solve.
        assert!((e.flow_rate(FlowId(0)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn routeless_flows_never_trigger_component_solves() {
        let mut e = Engine::new();
        for i in 0..8 {
            e.start_flow(FlowSpec::new(10.0, &[], Tag(i)).with_cap(1.0 + i as f64));
        }
        e.settle_rates();
        let s = e.stats();
        assert_eq!(s.component_solves, 0);
        assert_eq!(s.routeless_assigns, 8);
        assert!((e.flow_rate(FlowId(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncapped_routeless_flow_completes_instantly() {
        let mut e = Engine::new();
        e.start_flow(FlowSpec::new(1e9, &[], Tag(7)));
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(7));
        assert!(e.now() < 1e-9, "MAX_RATE makes the duration negligible");
    }

    #[test]
    fn shared_resource_merges_components() {
        // f1 on {a}, f2 on {a, b}, f3 on {b}: one component through f2.
        let mut e = Engine::new();
        let a = e.add_resource(ResourceSpec::constant(10.0));
        let b = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[a], Tag(1)));
        e.start_flow(FlowSpec::new(100.0, &[a, b], Tag(2)));
        e.start_flow(FlowSpec::new(100.0, &[b], Tag(3)));
        e.settle_rates();
        let s = e.stats();
        assert_eq!(s.component_solves, 1);
        assert_eq!(s.full_solves, 1);
        assert_eq!(s.flows_resolved, 3);
        for i in 0..3 {
            assert!((e.flow_rate(FlowId(i)) - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn reset_clears_state_but_reuses_allocations() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(1)));
        e.set_timer(1000.0, Tag(9));
        e.drain();
        assert!(e.now() > 0.0);

        e.reset();
        assert_eq!(e.now(), 0.0);
        assert_eq!(e.live_flows(), 0);
        assert_eq!(e.stats(), Stats::default());

        // A fresh run on the reused engine behaves like a new engine.
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(2)));
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(2));
        assert!((e.now() - 10.0).abs() < 1e-9);
        assert!(e.next().is_none());
    }

    #[test]
    fn reset_with_fewer_resources_is_sound() {
        let mut e = Engine::new();
        let r1 = e.add_resource(ResourceSpec::constant(10.0));
        let r2 = e.add_resource(ResourceSpec::constant(20.0));
        e.start_flow(FlowSpec::new(10.0, &[r1, r2], Tag(1)));
        e.drain();
        e.reset();
        let r = e.add_resource(ResourceSpec::constant(5.0));
        e.start_flow(FlowSpec::new(50.0, &[r], Tag(2)));
        e.next().unwrap();
        assert!((e.now() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn pipelined_reissue_stays_component_scoped() {
        // The pattern that motivated the old swap fast path: a stream of
        // identical flows on one resource, reissued on completion, while an
        // unrelated resource hosts its own flows. The unrelated component
        // must never be re-solved.
        let mut e = Engine::new();
        let hot = e.add_resource(ResourceSpec::constant(10.0));
        let cold = e.add_resource(ResourceSpec::constant(1.0));
        e.start_flow(FlowSpec::new(1e6, &[cold], Tag(999)));
        e.start_flow(FlowSpec::new(10.0, &[hot], Tag(0)));
        e.settle_rates();
        let base = e.stats();
        for k in 1..=50 {
            let ev = e.next().unwrap();
            assert_eq!(ev.tag(), Tag(k - 1));
            e.start_flow(FlowSpec::new(10.0, &[hot], Tag(k)));
        }
        e.settle_rates();
        let s = e.stats();
        // Every reissue hit the identical-signature swap: no solver work
        // at all, and the cold component was never touched.
        assert_eq!(s.swap_inherits - base.swap_inherits, 50);
        assert_eq!(s.flows_resolved, base.flows_resolved);
        assert_eq!(s.full_solves, base.full_solves);
    }

    #[test]
    fn swap_survives_routeless_churn() {
        // The documented steady state: a chunk completes, a route-less
        // compute block starts, then the identical chunk is reissued. The
        // compute start must not invalidate the swap candidate.
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(10.0, &[r], Tag(0)));
        e.start_flow(FlowSpec::new(1e4, &[r], Tag(9)));
        e.next().unwrap(); // Tag(0) completes; candidate = its signature
        e.start_flow(FlowSpec::new(5.0, &[], Tag(50)).with_cap(2.0)); // route-less churn
        let twin = e.start_flow(FlowSpec::new(10.0, &[r], Tag(1))); // identical twin
        assert_eq!(e.stats().swap_inherits, 1, "candidate survived the route-less start");
        e.settle_rates();
        assert!((e.flow_rate(twin) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn swap_requires_identical_signature() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(10.0, &[r], Tag(0)).with_cap(3.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(9)));
        e.next().unwrap(); // capped flow completes
                           // Different cap: must NOT inherit; a real solve gives it the full
                           // remaining share.
        let newcomer = e.start_flow(FlowSpec::new(10.0, &[r], Tag(1)).with_cap(8.0));
        e.settle_rates();
        assert_eq!(e.stats().swap_inherits, 0);
        assert!((e.flow_rate(newcomer) - 5.0).abs() < 1e-9, "fair share, not old cap");
    }

    #[test]
    fn swap_candidate_dies_on_settle() {
        // A settle between the completion and the identical start consumes
        // the dirty marks; the start must trigger a fresh solve, not
        // inherit a stale rate.
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(10.0, &[r], Tag(0)));
        let long = e.start_flow(FlowSpec::new(100.0, &[r], Tag(9)));
        e.next().unwrap(); // Tag(0) completes at t=2 (rate 5 each)
        e.settle_rates(); // Tag(9) re-solved alone: rate 10
        let late = e.start_flow(FlowSpec::new(10.0, &[r], Tag(1)));
        e.settle_rates();
        assert_eq!(e.stats().swap_inherits, 0);
        assert!((e.flow_rate(late) - 5.0).abs() < 1e-9);
        assert!((e.flow_rate(long) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn partially_matched_batch_resolves_dirty_components() {
        // Two identical flows complete together; only one is reissued. The
        // unmatched candidate forces a real solve, which must override the
        // inherited rate with the fresh allocation.
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(20.0, &[r], Tag(0)));
        e.start_flow(FlowSpec::new(20.0, &[r], Tag(1)));
        let ev = e.next().unwrap(); // both complete at t=4; batch of 2
        assert_eq!(ev.tag(), Tag(0));
        let reissue = e.start_flow(FlowSpec::new(30.0, &[r], Tag(2))); // matches; inherits 5
        assert_eq!(e.stats().swap_inherits, 1);
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(1)); // second half of the batch
        e.settle_rates(); // unmatched candidate remains: full re-solve
        assert!((e.flow_rate(reissue) - 10.0).abs() < 1e-9, "alone now: full capacity");
        // 30 units at rate 10 from t=4 -> completes at t=7.
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(2));
        assert!((e.now() - 7.0).abs() < 1e-9, "now={}", e.now());
    }

    #[test]
    fn stable_component_resolves_from_membership_cache() {
        // WAN-like component: two links behind a shared bottleneck. The
        // first solve walks and captures the membership; a cancellation
        // (strong dirty, same resource set) re-solves it from the cache.
        let mut e = Engine::new();
        let wan = e.add_resource(ResourceSpec::constant(10.0));
        let l1 = e.add_resource(ResourceSpec::constant(100.0));
        let l2 = e.add_resource(ResourceSpec::constant(100.0));
        e.start_flow(FlowSpec::new(50.0, &[wan, l1], Tag(1)));
        let f2 = e.start_flow(FlowSpec::new(80.0, &[wan, l2], Tag(2)));
        e.settle_rates();
        let s0 = e.stats();
        assert_eq!(s0.memb_cache_builds, 1, "first walk captured");
        assert_eq!(s0.memb_cache_hits, 0);

        e.cancel_flow(f2);
        e.settle_rates();
        let s1 = e.stats();
        assert_eq!(s1.memb_cache_builds, 1, "no re-walk");
        assert_eq!(s1.memb_cache_hits, 1, "stable membership served from cache");
        assert!((e.flow_rate(FlowId(0)) - 10.0).abs() < 1e-9, "survivor gets the full WAN");
    }

    #[test]
    fn attach_inside_cached_component_keeps_cache_valid() {
        let mut e = Engine::new();
        let wan = e.add_resource(ResourceSpec::constant(10.0));
        let l1 = e.add_resource(ResourceSpec::constant(100.0));
        e.start_flow(FlowSpec::new(50.0, &[wan, l1], Tag(1)));
        e.settle_rates();
        // A new flow whose route stays inside the cached set: membership
        // is unchanged, the next settle hits the cache.
        e.start_flow(FlowSpec::new(50.0, &[wan, l1], Tag(2)));
        e.settle_rates();
        let s = e.stats();
        assert_eq!(s.memb_cache_builds, 1);
        assert_eq!(s.memb_cache_hits, 1);
        assert!((e.flow_rate(FlowId(1)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn merging_attach_invalidates_membership_cache() {
        // Two separately-captured components; a bridging flow must force a
        // fresh walk (the cached sets are no longer closed).
        let mut e = Engine::new();
        let a = e.add_resource(ResourceSpec::constant(10.0));
        let b = e.add_resource(ResourceSpec::constant(20.0));
        e.start_flow(FlowSpec::new(1e3, &[a], Tag(1)));
        e.start_flow(FlowSpec::new(1e3, &[b], Tag(2)));
        e.settle_rates();
        assert_eq!(e.stats().memb_cache_builds, 2);

        e.start_flow(FlowSpec::new(1e3, &[a, b], Tag(3)));
        e.settle_rates();
        let s = e.stats();
        assert_eq!(s.memb_cache_hits, 0, "bridge must not reuse stale memberships");
        assert_eq!(s.memb_cache_builds, 3, "merged component re-walked and captured");
        // Max–min over the merged component: bridge and a-flow at 5,
        // b-flow at 15.
        assert!((e.flow_rate(FlowId(0)) - 5.0).abs() < 1e-9);
        assert!((e.flow_rate(FlowId(2)) - 5.0).abs() < 1e-9);
        assert!((e.flow_rate(FlowId(1)) - 15.0).abs() < 1e-9);

        // The merged membership is cached in turn: a cancellation now
        // re-solves from the cache.
        e.cancel_flow(FlowId(2));
        e.settle_rates();
        let s = e.stats();
        assert_eq!(s.memb_cache_hits, 1);
        assert_eq!(s.memb_cache_builds, 3);
    }

    #[test]
    fn cached_superset_after_split_still_solves_exactly() {
        // Capture {a, b} via a bridging flow, detach the bridge (split),
        // then re-solve from the cached superset: rates must match the
        // per-component ground truth.
        let mut e = Engine::new();
        let a = e.add_resource(ResourceSpec::constant(10.0));
        let b = e.add_resource(ResourceSpec::constant(20.0));
        let bridge = e.start_flow(FlowSpec::new(1e3, &[a, b], Tag(0)));
        e.start_flow(FlowSpec::new(1e3, &[a], Tag(1)));
        e.start_flow(FlowSpec::new(1e3, &[b], Tag(2)));
        e.settle_rates();
        let builds = e.stats().memb_cache_builds;
        e.cancel_flow(bridge); // strong marks on both; membership splits
        e.settle_rates();
        let s = e.stats();
        assert_eq!(s.memb_cache_builds, builds, "superset reused, no walk");
        assert!(s.memb_cache_hits >= 1);
        assert!((e.flow_rate(FlowId(1)) - 10.0).abs() < 1e-9, "a alone");
        assert!((e.flow_rate(FlowId(2)) - 20.0).abs() < 1e-9, "b alone");
    }

    #[test]
    fn reset_retires_membership_cache() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(10.0, &[r], Tag(1)));
        e.settle_rates();
        assert_eq!(e.stats().memb_cache_builds, 1);
        e.reset();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(10.0, &[r], Tag(1)));
        e.settle_rates();
        // The stale pre-reset membership must not be resurrected.
        let s = e.stats();
        assert_eq!(s.memb_cache_hits, 0);
        assert_eq!(s.memb_cache_builds, 1);
        assert!((e.flow_rate(FlowId(0)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn timer_set_mid_batch_fires_before_remaining_completions() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        for i in 0..3 {
            e.start_flow(FlowSpec::new(10.0, &[r], Tag(i)));
        }
        let ev = e.next().unwrap(); // batch of 3 at t=3; first delivered
        assert_eq!(ev.tag(), Tag(0));
        assert!((e.now() - 3.0).abs() < 1e-9);
        e.set_timer(0.0, Tag(99)); // lands at exactly the batch instant
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(99), "tie rule: timers before completions");
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(1));
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(2));
    }

    #[test]
    fn peek_time_previews_next_without_delivering() {
        let mut e = Engine::new();
        assert_eq!(e.peek_time(), None);
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(20.0, &[r], Tag(1)));
        e.set_timer(1.0, Tag(2));
        assert_eq!(e.peek_time(), Some(1.0));
        assert_eq!(e.next().unwrap().tag(), Tag(2));
        assert_eq!(e.peek_time(), Some(2.0));
        assert_eq!(e.next().unwrap().tag(), Tag(1));
        assert_eq!(e.peek_time(), None);
    }

    #[test]
    fn peek_time_reports_pending_batch_at_now() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(10.0, &[r], Tag(0)));
        e.start_flow(FlowSpec::new(10.0, &[r], Tag(1)));
        let _ = e.next().unwrap(); // batch of 2 at t=2; one still pending
        assert_eq!(e.peek_time(), Some(e.now()));
    }

    #[test]
    fn next_before_respects_the_bound() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(20.0, &[r], Tag(1))); // completes at 2
        assert_eq!(e.next_before(1.5), None);
        assert!(e.now() < 1.5);
        assert_eq!(e.next_before(2.0), None, "bound is exclusive");
        let ev = e.next_before(2.5).unwrap();
        assert_eq!(ev.tag(), Tag(1));
        assert!((e.now() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn advance_clock_moves_time_between_events() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(20.0, &[r], Tag(1))); // completes at 2
        e.advance_clock(1.0);
        assert_eq!(e.now(), 1.0);
        assert!((e.flow_remaining(FlowId(0)) - 10.0).abs() < 1e-6);
        // A flow started at the advanced clock finishes relative to it.
        e.start_flow(FlowSpec::new(5.0, &[r], Tag(2)));
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(2));
        assert!((e.now() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "skip an event")]
    fn advance_clock_cannot_skip_events() {
        let mut e = Engine::new();
        e.set_timer(1.0, Tag(1));
        e.advance_clock(1.5);
    }

    #[test]
    fn event_queue_counters_track_pushes_pops_and_stale_drops() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        // Two flows share, so B's completion causes a rate change for A:
        // A gets a second (stale-making) completion entry.
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(0xA)));
        e.start_flow(FlowSpec::new(50.0, &[r], Tag(0xB)));
        let t = e.set_timer(1.0, Tag(9));
        e.cancel_timer(t);
        e.drain();
        let s = e.stats();
        assert!(s.event_pushes >= 4, "3 completion entries + 1 timer: {s:?}");
        assert_eq!(s.event_pops, s.event_pushes, "a drained engine pops everything it pushed");
        assert!(s.event_stale_drops >= 2, "A's first entry + cancelled timer: {s:?}");
        assert_eq!(s.calendar_resizes, 0, "heap backend never resizes");
        assert_eq!(s.calendar_overflow_hits, 0);
    }

    #[test]
    fn reset_clears_event_queue_counters() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(10.0, &[r], Tag(1)));
        e.drain();
        assert!(e.stats().event_pushes > 0);
        e.reset();
        let s = e.stats();
        assert_eq!((s.event_pushes, s.event_pops, s.event_stale_drops), (0, 0, 0));
    }

    /// Whole-engine differential oracle: the same chunk-pipelined,
    /// timer-heavy schedule must produce the identical event sequence,
    /// timestamps, and rates on every backend.
    #[test]
    fn backends_deliver_identical_event_sequences() {
        fn run(backend: EventListBackend) -> Vec<(u64, u64)> {
            let mut e = Engine::new();
            e.set_event_list_backend(backend);
            let shared = e.add_resource(ResourceSpec::constant(100.0));
            let spare = e.add_resource(ResourceSpec::constant(40.0));
            for i in 0..40u64 {
                let route: &[ResourceId] = if i % 3 == 0 { &[shared, spare] } else { &[shared] };
                let mut spec = FlowSpec::new(50.0 + (i % 7) as f64 * 12.5, route, Tag(i));
                if i % 4 == 1 {
                    spec = spec.with_latency(0.25 * (i % 5) as f64);
                }
                if i % 5 == 2 {
                    spec = spec.with_cap(6.0);
                }
                e.start_flow(spec);
            }
            for i in 0..10u64 {
                e.set_timer(0.375 * i as f64, Tag(1000 + i));
            }
            let mut log = Vec::new();
            while let Some(ev) = e.next() {
                log.push((ev.tag().0, e.now().to_bits()));
                // Reissue work on some completions to recycle flow slots.
                if let Event::FlowCompleted { tag, .. } = ev {
                    if tag.0 % 6 == 0 && tag.0 < 60 {
                        e.start_flow(FlowSpec::new(30.0, &[shared], Tag(tag.0 + 100)));
                    }
                }
            }
            log.push((u64::MAX, e.now().to_bits()));
            log
        }
        let heap = run(EventListBackend::Heap);
        assert_eq!(heap, run(EventListBackend::Calendar), "calendar diverged");
        assert_eq!(heap, run(EventListBackend::Auto), "auto diverged");
    }

    /// The degeneracy oracle at engine level: a flow-level model with zero
    /// propagation delay and an unbounded window must replay the max–min
    /// trace bit for bit, including on a workload full of WAN annotations,
    /// reissues, caps and latencies.
    #[test]
    fn degenerate_flow_level_matches_maxmin_bit_for_bit() {
        fn run(config: BandwidthModelConfig) -> Vec<(u64, u64)> {
            let mut e = Engine::new();
            e.set_bandwidth_model(config);
            let wan = e.add_resource(ResourceSpec::constant(100.0));
            let nic = e.add_resource(ResourceSpec::constant(40.0));
            for i in 0..40u64 {
                let route: &[ResourceId] = if i % 3 == 0 { &[wan, nic] } else { &[wan] };
                let mut spec = FlowSpec::new(50.0 + (i % 7) as f64 * 12.5, route, Tag(i));
                if i % 4 == 1 {
                    spec = spec.with_latency(0.25 * (i % 5) as f64);
                }
                if i % 5 == 2 {
                    spec = spec.with_cap(6.0);
                }
                if i % 2 == 0 {
                    spec = spec.with_wan(0.0, wan); // zero-delay WAN annotation
                }
                e.start_flow(spec);
            }
            for i in 0..10u64 {
                e.set_timer(0.375 * i as f64, Tag(1000 + i));
            }
            let mut log = Vec::new();
            while let Some(ev) = e.next() {
                log.push((ev.tag().0, e.now().to_bits()));
                if let Event::FlowCompleted { tag, .. } = ev {
                    if tag.0 % 6 == 0 && tag.0 < 60 {
                        let spec = FlowSpec::new(30.0, &[wan], Tag(tag.0 + 100)).with_wan(0.0, wan);
                        e.start_flow(spec);
                    }
                }
            }
            log.push((u64::MAX, e.now().to_bits()));
            log
        }
        let maxmin = run(BandwidthModelConfig::MaxMin);
        let degen = run(BandwidthModelConfig::FlowLevel(FlowLevelParams::degenerate()));
        assert_eq!(maxmin, degen, "degenerate flow-level diverged from max-min");
    }

    #[test]
    fn windowed_wan_flow_is_capped_at_window_over_rtt() {
        let mut e = Engine::new();
        let params = FlowLevelParams {
            window: Some(1e6),
            additive_increase: 0.0, // freeze the window so the cap is exact
            ..FlowLevelParams::default()
        };
        e.set_bandwidth_model(BandwidthModelConfig::FlowLevel(params));
        let wan = e.add_resource(ResourceSpec::constant(1e9));
        let id = e.start_flow(FlowSpec::new(1e9, &[wan], Tag(1)).with_wan(0.01, wan));
        // The propagation delay defers the start; step past the activation.
        assert!(e.next_before(0.02).is_none());
        e.settle_rates();
        // window / (2 * prop delay) = 1e6 / 0.02 = 5e7, far below the 1e9 link.
        assert!((e.flow_rate(id) - 5e7).abs() < 1.0, "rate = {}", e.flow_rate(id));
    }

    #[test]
    fn wan_propagation_delay_defers_completion() {
        // Under flow-level, the WAN annotation's delay adds start latency;
        // under max-min it is inert.
        for (cfg, expect) in [
            (BandwidthModelConfig::MaxMin, 1.0),
            (BandwidthModelConfig::FlowLevel(FlowLevelParams::degenerate()), 1.5),
        ] {
            let mut e = Engine::new();
            e.set_bandwidth_model(cfg);
            let wan = e.add_resource(ResourceSpec::constant(1.0));
            e.start_flow(FlowSpec::new(1.0, &[wan], Tag(1)).with_wan(0.5, wan));
            let t = e.drain();
            assert!((t - expect).abs() < 1e-9, "finished at {t}, expected {expect}");
        }
    }

    #[test]
    fn dynamic_wan_flows_skip_swap_fast_path() {
        // A pipelined stream of identical windowed flows must never take the
        // inherit fast path: each departure changes the QDisc occupancy.
        fn run(cfg: BandwidthModelConfig) -> Stats {
            let mut e = Engine::new();
            e.set_bandwidth_model(cfg);
            let wan = e.add_resource(ResourceSpec::constant(100.0));
            let mk = |i: u64| FlowSpec::new(10.0, &[wan], Tag(i)).with_wan(0.001, wan);
            e.start_flow(mk(0));
            e.start_flow(mk(1));
            let mut next = 2u64;
            while let Some(ev) = e.next() {
                if let Event::FlowCompleted { .. } = ev {
                    if next < 20 {
                        e.start_flow(mk(next));
                        next += 1;
                    }
                }
            }
            e.stats()
        }
        let maxmin = run(BandwidthModelConfig::MaxMin);
        assert!(maxmin.swap_inherits > 0, "max-min should take the fast path");
        let windowed = run(BandwidthModelConfig::FlowLevel(FlowLevelParams::default()));
        assert_eq!(windowed.swap_inherits, 0, "windowed flows must not inherit rates");
        assert_eq!(windowed.wan_flows, 20);
    }

    mod degeneracy_oracle {
        use super::*;
        use crate::wan::FlowLevelParams;
        use proptest::prelude::*;

        /// A random workload: per flow (demand grid, route selector, cap
        /// selector, latency grid, WAN-annotation flag). Demands sit on a
        /// coarse grid so identical-signature swaps and same-timestamp
        /// batches actually occur.
        fn workload() -> impl Strategy<Value = Vec<(u32, u32, u32, u32, u32)>> {
            proptest::collection::vec((1u32..80, 0u32..3, 0u32..3, 0u32..4, 0u32..2), 1..60)
        }

        /// Random AIMD knobs (all irrelevant once the window is unbounded
        /// and the delay zero — that irrelevance is the property).
        fn knobs() -> impl Strategy<Value = (u32, u32, u32)> {
            (1u32..19, 0u32..5, 0u32..4)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The degeneracy guarantee, randomized: any flow-level config
            /// collapsed to zero delay + unbounded window replays the
            /// max–min trace bit for bit, whatever its AIMD knobs and
            /// whichever flows carry WAN annotations.
            #[test]
            fn collapsed_flow_level_replays_maxmin((flows, (g, ai, thr)) in (workload(), knobs())) {
                let params = FlowLevelParams {
                    window: None, // unbounded: the collapse
                    gain: f64::from(g) * 0.1,
                    additive_increase: f64::from(ai) * 5e4,
                    mark_threshold: f64::from(thr) * 2.5e-3,
                    ..FlowLevelParams::default()
                };
                fn run(
                    config: BandwidthModelConfig,
                    flows: &[(u32, u32, u32, u32, u32)],
                ) -> Vec<(u64, u64)> {
                    let mut e = Engine::new();
                    e.set_bandwidth_model(config);
                    let wan = e.add_resource(ResourceSpec::constant(100.0));
                    let nic = e.add_resource(ResourceSpec::constant(40.0));
                    for (i, &(d, route, cap, lat, w)) in flows.iter().enumerate() {
                        let route: &[ResourceId] = match route {
                            0 => &[wan],
                            1 => &[wan, nic],
                            _ => &[nic],
                        };
                        let mut spec =
                            FlowSpec::new(f64::from(d) * 12.5, route, Tag(i as u64));
                        if cap > 0 {
                            spec = spec.with_cap(f64::from(cap) * 7.0);
                        }
                        if lat > 0 {
                            spec = spec.with_latency(f64::from(lat) * 0.25);
                        }
                        if w > 0 {
                            spec = spec.with_wan(0.0, wan); // zero delay: the collapse
                        }
                        e.start_flow(spec);
                    }
                    let mut log = Vec::new();
                    while let Some(ev) = e.next() {
                        log.push((ev.tag().0, e.now().to_bits()));
                    }
                    log
                }
                let maxmin = run(BandwidthModelConfig::MaxMin, &flows);
                let degen = run(BandwidthModelConfig::FlowLevel(params), &flows);
                prop_assert_eq!(maxmin, degen, "collapsed flow-level diverged");
            }
        }
    }

    #[test]
    fn model_selection_survives_reset_but_counters_clear() {
        let mut e = Engine::new();
        e.set_bandwidth_model(BandwidthModelConfig::FlowLevel(FlowLevelParams::default()));
        assert_eq!(e.bandwidth_model_name(), "flow-level");
        let wan = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(5.0, &[wan], Tag(1)).with_wan(0.01, wan));
        e.drain();
        assert_eq!(e.stats().wan_flows, 1);
        e.reset();
        assert_eq!(e.bandwidth_model_name(), "flow-level", "selection survives reset");
        assert_eq!(e.stats(), Stats::default(), "per-run model state cleared");
    }
}
