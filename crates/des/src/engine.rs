//! The simulation engine: virtual clock, flow table, rate recomputation,
//! and the caller-driven event loop.

use crate::flow::{FlowSpec, FlowState, FlowStatus};
use crate::ids::{FlowId, ResourceId, Tag, TimerId};
use crate::resource::ResourceSpec;
use crate::sharing::{solve_max_min, FlowInput, ResourceInput};
use crate::stats::Stats;
use crate::timer::{TimerKind, TimerQueue};

/// An event delivered to the caller by [`Engine::next`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A flow served its full demand.
    FlowCompleted {
        /// The completed flow.
        flow: FlowId,
        /// The tag the flow was started with.
        tag: Tag,
    },
    /// A user timer fired.
    TimerFired {
        /// The fired timer.
        timer: TimerId,
        /// The tag the timer was set with.
        tag: Tag,
    },
}

impl Event {
    /// The user tag carried by this event.
    pub fn tag(&self) -> Tag {
        match *self {
            Event::FlowCompleted { tag, .. } | Event::TimerFired { tag, .. } => tag,
        }
    }
}

/// State for the single-flow swap fast path. See the field docs on
/// [`Engine::swap_candidate`].
#[derive(Debug, Clone)]
struct SwapCandidate {
    route: Vec<ResourceId>,
    rate_cap: Option<f64>,
    rate: f64,
}

/// Fluid discrete-event simulation engine. See the crate docs for the model.
#[derive(Debug)]
pub struct Engine {
    time: f64,
    resources: Vec<ResourceSpec>,
    flows: Vec<FlowState>,
    /// Ids of flows in `Pending` or `Active` state (maintained incrementally).
    live: Vec<FlowId>,
    timers: TimerQueue,
    dirty: bool,
    /// Fast path: when the only change since the last rate computation is
    /// the completion of one flow, a newly started flow with an identical
    /// (route, cap) signature can inherit its rate — the max–min allocation
    /// depends only on the multiset of (route, cap) pairs, and both changes
    /// happen at the same instant so the intermediate allocation never
    /// integrates over time. This is the steady-state pattern of pipelined
    /// chunk streams and cuts most recomputations.
    swap_candidate: Option<SwapCandidate>,
    stats: Stats,
    /// Scratch buffers reused across rate recomputations.
    scratch_resources: Vec<ResourceInput>,
    scratch_flows: Vec<FlowInput>,
    scratch_rates: Vec<f64>,
    scratch_live_idx: Vec<usize>,
    scratch_counts: Vec<usize>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// A fresh engine at time 0 with no resources or flows.
    pub fn new() -> Self {
        Self {
            time: 0.0,
            resources: Vec::new(),
            flows: Vec::new(),
            live: Vec::new(),
            timers: TimerQueue::new(),
            dirty: false,
            swap_candidate: None,
            stats: Stats::default(),
            scratch_resources: Vec::new(),
            scratch_flows: Vec::new(),
            scratch_rates: Vec::new(),
            scratch_live_idx: Vec::new(),
            scratch_counts: Vec::new(),
        }
    }

    /// Current simulated time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.time
    }

    /// Engine statistics so far.
    #[inline]
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Register a resource.
    pub fn add_resource(&mut self, spec: ResourceSpec) -> ResourceId {
        let id = ResourceId(u32::try_from(self.resources.len()).expect("too many resources"));
        self.resources.push(spec);
        self.stats.resources += 1;
        id
    }

    /// Start a flow; returns its id. The flow begins consuming bandwidth
    /// after its latency (if any) elapses.
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        spec.validate();
        for r in &spec.route {
            assert!(r.index() < self.resources.len(), "unknown resource in route");
        }
        let id = FlowId(u32::try_from(self.flows.len()).expect("too many flows"));
        let state = FlowState::from_spec(&spec);
        let pending = state.status == FlowStatus::Pending;
        self.flows.push(state);
        self.live.push(id);
        self.stats.flows_started += 1;
        if pending {
            // A pending flow does not change the current allocation.
            self.timers
                .schedule(self.time + spec.latency, TimerKind::ActivateFlow(id));
        } else if self.dirty {
            // Swap fast path: inherit the rate of the just-completed flow
            // when the (route, cap) signature matches exactly.
            match self.swap_candidate.take() {
                Some(c) if c.route == spec.route && c.rate_cap == spec.rate_cap => {
                    self.flows[id.index()].rate = c.rate;
                    self.dirty = false;
                }
                _ => {}
            }
        } else {
            self.dirty = true;
            self.swap_candidate = None;
        }
        id
    }

    /// Cancel a live flow. Completed/cancelled flows are ignored.
    pub fn cancel_flow(&mut self, id: FlowId) {
        let f = &mut self.flows[id.index()];
        if matches!(f.status, FlowStatus::Active | FlowStatus::Pending) {
            // Progress must be settled before the rate vector changes.
            self.settle();
            let f = &mut self.flows[id.index()];
            f.status = FlowStatus::Cancelled;
            f.rate = 0.0;
            self.live.retain(|&x| x != id);
            self.stats.flows_cancelled += 1;
            self.dirty = true;
            self.swap_candidate = None;
        }
    }

    /// Set a timer firing `delay` seconds from now.
    pub fn set_timer(&mut self, delay: f64, tag: Tag) -> TimerId {
        assert!(delay.is_finite() && delay >= 0.0, "timer delay must be non-negative");
        self.timers.schedule(self.time + delay, TimerKind::User(tag))
    }

    /// Cancel a timer (no-op if already fired).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.timers.cancel(id);
    }

    /// Remaining demand of a flow (0 for completed flows).
    pub fn flow_remaining(&self, id: FlowId) -> f64 {
        self.flows[id.index()].remaining.max(0.0)
    }

    /// Current rate of a flow.
    pub fn flow_rate(&self, id: FlowId) -> f64 {
        self.flows[id.index()].rate
    }

    /// Status of a flow.
    pub fn flow_status(&self, id: FlowId) -> FlowStatus {
        self.flows[id.index()].status
    }

    /// Number of live (pending or active) flows.
    pub fn live_flows(&self) -> usize {
        self.live.len()
    }

    /// Advance simulated time to the next event and return it, or `None`
    /// when no flows or timers remain.
    pub fn next(&mut self) -> Option<Event> {
        loop {
            if self.dirty {
                self.recompute_rates();
            }

            // Earliest flow completion.
            let mut t_flow = f64::INFINITY;
            let mut next_flow: Option<FlowId> = None;
            for &id in &self.live {
                let f = &self.flows[id.index()];
                if f.status != FlowStatus::Active {
                    continue;
                }
                let t = if f.is_done() {
                    self.time
                } else if f.rate > 0.0 {
                    self.time + f.remaining / f.rate
                } else {
                    f64::INFINITY
                };
                if t < t_flow {
                    t_flow = t;
                    next_flow = Some(id);
                }
            }

            let t_timer = self.timers.peek_time().unwrap_or(f64::INFINITY);

            if t_flow.is_infinite() && t_timer.is_infinite() {
                debug_assert!(
                    self.live.iter().all(|&id| {
                        self.flows[id.index()].status != FlowStatus::Active
                            || self.flows[id.index()].rate > 0.0
                            || self.flows[id.index()].is_done()
                    }) || self.live.is_empty(),
                    "deadlock: active flows with zero rate and no timers"
                );
                return None;
            }

            if t_timer <= t_flow {
                self.advance_to(t_timer);
                let (timer, _, kind) = self.timers.pop().expect("peeked non-empty");
                match kind {
                    TimerKind::User(tag) => {
                        self.stats.timer_firings += 1;
                        return Some(Event::TimerFired { timer, tag });
                    }
                    TimerKind::ActivateFlow(id) => {
                        let f = &mut self.flows[id.index()];
                        if f.status == FlowStatus::Pending {
                            f.status = FlowStatus::Active;
                            self.dirty = true;
                            self.swap_candidate = None;
                        }
                        continue;
                    }
                }
            } else {
                let id = next_flow.expect("finite completion implies a flow");
                self.advance_to(t_flow);
                let f = &mut self.flows[id.index()];
                let rate = f.rate;
                f.remaining = 0.0;
                f.rate = 0.0;
                f.status = FlowStatus::Completed;
                let tag = f.tag;
                let route = std::mem::take(&mut self.flows[id.index()].route);
                self.live.retain(|&x| x != id);
                self.swap_candidate = if self.dirty {
                    None
                } else {
                    Some(SwapCandidate { rate_cap: self.flows[id.index()].rate_cap, route, rate })
                };
                self.dirty = true;
                self.stats.flow_completions += 1;
                return Some(Event::FlowCompleted { flow: id, tag });
            }
        }
    }

    /// Run the simulation to completion, discarding events. Returns the
    /// final time. Mostly useful in tests.
    pub fn drain(&mut self) -> f64 {
        while self.next().is_some() {}
        self.time
    }

    /// Settle flow progress up to the current time (no time change).
    fn settle(&mut self) {
        // Progress is settled implicitly by `advance_to`; nothing to do at
        // the current instant. Kept as an explicit hook for cancel_flow.
    }

    fn advance_to(&mut self, t: f64) {
        debug_assert!(t >= self.time - 1e-12, "time went backwards: {} -> {t}", self.time);
        let dt = (t - self.time).max(0.0);
        if dt > 0.0 {
            for &id in &self.live {
                let f = &mut self.flows[id.index()];
                if f.status == FlowStatus::Active && f.rate > 0.0 {
                    f.remaining = (f.remaining - f.rate * dt).max(0.0);
                }
            }
        }
        self.time = t;
    }

    fn recompute_rates(&mut self) {
        self.dirty = false;
        self.swap_candidate = None;
        self.stats.rate_recomputes += 1;

        self.scratch_resources.clear();
        self.scratch_resources.reserve(self.resources.len());
        // Effective capacities need per-resource flow counts first.
        self.scratch_counts.clear();
        self.scratch_counts.resize(self.resources.len(), 0);
        self.scratch_live_idx.clear();
        let mut n_active = 0usize;
        for &id in &self.live {
            let f = &self.flows[id.index()];
            if f.status != FlowStatus::Active {
                continue;
            }
            self.scratch_live_idx.push(id.index());
            for r in &f.route {
                self.scratch_counts[r.index()] += 1;
            }
            // Reuse FlowInput entries (and their route Vec allocations)
            // across recomputations: this path runs once per event.
            if n_active < self.scratch_flows.len() {
                let slot = &mut self.scratch_flows[n_active];
                slot.route.clear();
                slot.route.extend(f.route.iter().map(|r| r.index()));
                slot.cap = f.rate_cap;
            } else {
                self.scratch_flows.push(FlowInput {
                    route: f.route.iter().map(|r| r.index()).collect(),
                    cap: f.rate_cap,
                });
            }
            n_active += 1;
        }
        for (spec, &n) in self.resources.iter().zip(&self.scratch_counts) {
            self.scratch_resources.push(ResourceInput { capacity: spec.capacity.effective(n) });
        }

        // Slice rather than truncate so spare FlowInput slots keep their
        // route-buffer allocations for the next recomputation.
        solve_max_min(
            &self.scratch_resources,
            &self.scratch_flows[..n_active],
            &mut self.scratch_rates,
        );

        for (k, &fi) in self.scratch_live_idx.iter().enumerate() {
            self.flows[fi].rate = self.scratch_rates[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceSpec;

    #[test]
    fn single_flow_duration_is_demand_over_capacity() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(1)));
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(1));
        assert!((e.now() - 10.0).abs() < 1e-9);
        assert!(e.next().is_none());
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        // Flow A: 100 units, flow B: 50 units on a 10-capacity resource.
        // Phase 1: both at rate 5 until B finishes at t=10.
        // Phase 2: A at rate 10 for its remaining 50 units -> done at t=15.
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(0xA)));
        e.start_flow(FlowSpec::new(50.0, &[r], Tag(0xB)));
        let ev1 = e.next().unwrap();
        assert_eq!(ev1.tag(), Tag(0xB));
        assert!((e.now() - 10.0).abs() < 1e-9);
        let ev2 = e.next().unwrap();
        assert_eq!(ev2.tag(), Tag(0xA));
        assert!((e.now() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn latency_delays_start() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(1)).with_latency(2.5));
        e.next().unwrap();
        assert!((e.now() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn rate_cap_limits_single_flow() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(100.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(1)).with_cap(4.0));
        e.next().unwrap();
        assert!((e.now() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn timers_interleave_with_flows() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(1)));
        e.set_timer(4.0, Tag(99));
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(99));
        assert!((e.now() - 4.0).abs() < 1e-9);
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(1));
        assert!((e.now() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn flow_added_midway_shares_remaining() {
        // A starts alone at rate 10. At t=5, B (50 units) arrives; both run
        // at 5. A has 50 left at t=5 -> both finish at t=15.
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(0xA)));
        e.set_timer(5.0, Tag(0));
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(0));
        e.start_flow(FlowSpec::new(50.0, &[r], Tag(0xB)));
        let t1 = e.next().unwrap();
        let t2 = e.next().unwrap();
        assert!((e.now() - 15.0).abs() < 1e-9);
        let tags = [t1.tag().0, t2.tag().0];
        assert!(tags.contains(&0xA) && tags.contains(&0xB));
    }

    #[test]
    fn cancel_flow_frees_bandwidth() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        let a = e.start_flow(FlowSpec::new(100.0, &[r], Tag(0xA)));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(0xB)));
        e.set_timer(2.0, Tag(0));
        e.next().unwrap(); // timer at t=2; both flows have 90 left
        e.cancel_flow(a);
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(0xB));
        // B had 90 left at t=2, now alone at rate 10 -> finishes at t=11.
        assert!((e.now() - 11.0).abs() < 1e-9, "now={}", e.now());
        assert_eq!(e.flow_status(a), FlowStatus::Cancelled);
    }

    #[test]
    fn zero_demand_flow_completes_immediately() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(0.0, &[r], Tag(1)));
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), Tag(1));
        assert_eq!(e.now(), 0.0);
    }

    #[test]
    fn degrading_resource_slows_under_load() {
        // base 20, alpha 1.0: two flows -> aggregate 20*2/3 = 13.33, each 6.67.
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::degrading(20.0, 1.0));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(1)));
        e.start_flow(FlowSpec::new(100.0, &[r], Tag(2)));
        e.next().unwrap();
        let expected = 100.0 / (20.0 * 2.0 / 3.0 / 2.0);
        assert!((e.now() - expected).abs() < 1e-6, "now={} expected={expected}", e.now());
    }

    #[test]
    fn multi_resource_route_bound_by_tightest() {
        let mut e = Engine::new();
        let fast = e.add_resource(ResourceSpec::constant(100.0));
        let slow = e.add_resource(ResourceSpec::constant(10.0));
        e.start_flow(FlowSpec::new(100.0, &[fast, slow], Tag(1)));
        e.next().unwrap();
        assert!((e.now() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn drain_returns_final_time() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(1.0));
        e.start_flow(FlowSpec::new(3.0, &[r], Tag(1)));
        e.start_flow(FlowSpec::new(5.0, &[r], Tag(2)));
        let t = e.drain();
        assert!((t - 8.0).abs() < 1e-9); // work-conserving: total 8 units at rate 1
    }

    #[test]
    fn stats_count_events() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(1.0));
        e.start_flow(FlowSpec::new(1.0, &[r], Tag(1)));
        e.set_timer(0.5, Tag(2));
        e.drain();
        let s = e.stats();
        assert_eq!(s.flow_completions, 1);
        assert_eq!(s.timer_firings, 1);
        assert_eq!(s.flows_started, 1);
        assert_eq!(s.resources, 1);
        assert_eq!(s.events(), 2);
    }

    #[test]
    fn simultaneous_completions_all_delivered() {
        let mut e = Engine::new();
        let r = e.add_resource(ResourceSpec::constant(10.0));
        for i in 0..4 {
            e.start_flow(FlowSpec::new(25.0, &[r], Tag(i)));
        }
        let mut tags = Vec::new();
        while let Some(ev) = e.next() {
            assert!((e.now() - 10.0).abs() < 1e-9);
            tags.push(ev.tag().0);
        }
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 1, 2, 3]);
    }
}
