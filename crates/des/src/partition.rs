//! Conservative partitioned discrete-event execution.
//!
//! Splits one simulation into several [`Partition`]s — each typically
//! wrapping its own [`crate::Engine`] — that interact **only** through
//! timestamped messages whose delivery lags their send by at least a
//! fixed, strictly positive **lookahead** (in the multi-site simulator:
//! the minimum WAN link latency). That gap is what makes parallel
//! execution safe without a global event list: a partition may process
//! everything strictly before `min(neighbor horizons) + lookahead`,
//! because any message a neighbor has yet to send cannot arrive sooner.
//!
//! Two runners share the same [`Partition`] contract:
//!
//! * [`run_sequential`] — the reference driver: a global-min loop over
//!   all partitions in one thread. This *is* the "single-engine" oracle
//!   the parallel runs are pinned against.
//! * [`run_parallel`] — shards the partitions over threads under the
//!   **null-message protocol** (Chandy–Misra–Bryant): each shard
//!   repeatedly drains its inbound channel, advances every owned
//!   partition inside its safety window, and announces its **horizon** —
//!   a lower bound on its future send times — whenever it grows. There
//!   is no global barrier; an idle shard blocks on its channel until a
//!   neighbor's data or horizon wakes it.
//!
//! Determinism does not depend on the runner: each partition processes
//! its local actions and delivered messages in a canonical order (time,
//! then sender, then per-sender sequence number — ties resolved
//! identically everywhere), so its evolution is a pure function of the
//! message multiset it receives, which both runners reproduce exactly.
//! The [`SyncStats`] counters, by contrast, describe the *protocol* run
//! (announcements, blocks) and legitimately vary across shard counts.
//!
//! Horizon announcements and data messages share one FIFO channel per
//! shard pair, so reading a horizon `h` from shard `q` proves every
//! message `q` sent before announcing `h` has already been received —
//! the property that makes the safety window sound without
//! acknowledgements.

use crossbeam::channel::{unbounded, Sender};

/// A cross-partition message: delivered to partition `dst` at simulated
/// time `time`.
///
/// `(time, src, seq)` is the canonical processing order: receivers must
/// handle messages in ascending order of that triple, and — by convention
/// shared with the multi-site simulator — before any same-timestamp local
/// engine event. `seq` is assigned by the runner from a per-sender
/// counter, so the triple is identical no matter which runner (or shard
/// count) routed the message.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Simulated delivery time (>= send time + lookahead).
    pub time: f64,
    /// Sending partition index.
    pub src: usize,
    /// Receiving partition index.
    pub dst: usize,
    /// Per-sender send sequence number (runner-assigned).
    pub seq: u64,
    /// Domain payload.
    pub payload: M,
}

/// One shard of a partitioned simulation.
///
/// The contract the runners rely on:
///
/// * [`next_time`](Partition::next_time) is a lower bound on the time of
///   the partition's next local action (event processing or message
///   send), `f64::INFINITY` when it has nothing pending;
/// * [`advance`](Partition::advance)`(bound, out)` processes **every**
///   local action strictly before `bound` — in canonical order — and
///   pushes outbound messages to `out`, each with
///   `time >= send time + lookahead`;
/// * [`deliver`](Partition::deliver) accepts a message for later
///   processing (it must not act on it immediately);
/// * [`done`](Partition::done) returns true only when the partition will
///   **never send again, regardless of future deliveries** — the strong
///   form that lets a shard announce an infinite horizon and the
///   protocol terminate without a global count.
pub trait Partition: Send {
    /// Domain message payload.
    type Msg: Send;

    /// Lower bound on the next local action time (`INFINITY` if idle).
    fn next_time(&mut self) -> f64;

    /// Process all local actions strictly before `bound`, appending
    /// outbound messages to `out`.
    fn advance(&mut self, bound: f64, out: &mut Vec<Envelope<Self::Msg>>);

    /// Accept a message (its `time` is always >= the current frontier).
    fn deliver(&mut self, env: Envelope<Self::Msg>);

    /// Whether this partition can never send another message.
    fn done(&mut self) -> bool;
}

/// Synchronization-protocol counters for one partitioned run.
///
/// `advance_calls`, `blocked_waits` and `horizon_announcements` describe
/// the protocol execution and vary with the shard count and thread
/// timing; they are diagnostics, never part of simulation results (the
/// simulation outputs themselves are bit-identical at any shard count).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SyncStats {
    /// Partitions in the run.
    pub partitions: usize,
    /// Shards (OS threads) the partitions were grouped into.
    pub shards: usize,
    /// The lookahead window used (seconds).
    pub lookahead: f64,
    /// Calls to [`Partition::advance`].
    pub advance_calls: u64,
    /// Messages routed across shards (over channels).
    pub data_messages: u64,
    /// Messages routed within a shard (no channel crossed).
    pub local_deliveries: u64,
    /// Horizon (null) messages sent.
    pub horizon_announcements: u64,
    /// Times a shard blocked waiting for neighbor input.
    pub blocked_waits: u64,
}

/// Validate a lookahead value.
fn check_lookahead(lookahead: f64) {
    assert!(
        lookahead.is_finite() && lookahead > 0.0,
        "conservative execution needs a strictly positive lookahead, got {lookahead}"
    );
}

/// Route one freshly-sent envelope: stamp its per-sender sequence number
/// and sanity-check the lookahead contract.
fn stamp<M>(env: &mut Envelope<M>, src: usize, seq: &mut u64, floor: f64, lookahead: f64) {
    debug_assert_eq!(env.src, src, "partitions may only send as themselves");
    debug_assert!(
        env.time >= floor + lookahead - 1e-9,
        "lookahead violation: message at {} from a partition whose frontier was {}",
        env.time,
        floor
    );
    env.seq = *seq;
    *seq += 1;
}

/// Run all partitions to completion in one thread (the reference /
/// single-engine driver): repeatedly advance the partition holding the
/// globally minimal next action, bounded by the runner-up plus lookahead.
///
/// Message delivery is immediate, so the safety window argument is exact:
/// any message the advancing partition has yet to receive would be sent
/// at or after the runner-up's time and delivered at least `lookahead`
/// later — beyond the bound it is advanced to.
pub fn run_sequential<P: Partition>(parts: &mut [P], lookahead: f64) -> SyncStats {
    check_lookahead(lookahead);
    assert!(!parts.is_empty(), "nothing to run");
    let n = parts.len();
    let mut stats = SyncStats { partitions: n, shards: 1, lookahead, ..SyncStats::default() };
    let mut seqs = vec![0u64; n];
    let mut out: Vec<Envelope<P::Msg>> = Vec::new();
    let mut times = vec![0.0f64; n];
    loop {
        for (t, p) in times.iter_mut().zip(parts.iter_mut()) {
            *t = p.next_time();
        }
        let (imin, &tmin) =
            times.iter().enumerate().min_by(|(_, a), (_, b)| a.total_cmp(b)).expect("non-empty");
        if tmin.is_infinite() {
            break;
        }
        let second = times
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != imin)
            .map(|(_, &t)| t)
            .fold(f64::INFINITY, f64::min);
        let bound = second + lookahead; // INFINITY-safe: alone means run to completion
        parts[imin].advance(bound, &mut out);
        stats.advance_calls += 1;
        for mut env in out.drain(..) {
            stamp(&mut env, imin, &mut seqs[imin], tmin, lookahead);
            stats.local_deliveries += 1;
            parts[env.dst].deliver(env);
        }
    }
    stats
}

/// Wire format of the inter-shard channels: domain messages and horizon
/// (null) announcements share one FIFO stream per sender.
enum Wire<M> {
    Data(Envelope<M>),
    Horizon { shard: usize, time: f64 },
}

/// Run the partitions across `shards` OS threads under the null-message
/// protocol; returns the partitions (in their original order) and the
/// merged protocol counters.
///
/// Partition `i` runs on shard `i % shards`. `shards` is clamped to
/// `[1, parts.len()]`; one shard falls back to [`run_sequential`], so a
/// 1-shard parallel run *is* the reference run.
pub fn run_parallel<P: Partition>(
    mut parts: Vec<P>,
    shards: usize,
    lookahead: f64,
) -> (Vec<P>, SyncStats) {
    check_lookahead(lookahead);
    assert!(!parts.is_empty(), "nothing to run");
    let n = parts.len();
    let shards = shards.clamp(1, n);
    if shards == 1 {
        let stats = run_sequential(&mut parts, lookahead);
        return (parts, stats);
    }

    // Deal partitions round-robin: shard p owns global indices
    // {p, p + shards, ...}; global g lives at local index g / shards.
    let mut owned: Vec<Vec<(usize, P)>> = (0..shards).map(|_| Vec::new()).collect();
    for (g, p) in parts.into_iter().enumerate() {
        owned[g % shards].push((g, p));
    }

    let mut channels = Vec::with_capacity(shards);
    let mut rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = unbounded::<Wire<P::Msg>>();
        channels.push(tx);
        rxs.push(Some(rx));
    }

    let result = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards);
        for (me, mut sites) in owned.into_iter().enumerate() {
            let txs = channels.clone();
            let rx = rxs[me].take().expect("each shard consumes its receiver once");
            handles.push(scope.spawn(move |_| {
                let stats = shard_loop(&mut sites, me, shards, &rx, &txs, lookahead);
                (sites, stats)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect::<Vec<_>>()
    })
    .expect("partitioned run panicked");

    let mut stats = SyncStats { partitions: n, shards, lookahead, ..SyncStats::default() };
    let mut slots: Vec<Option<P>> = (0..n).map(|_| None).collect();
    for (sites, s) in result {
        stats.advance_calls += s.advance_calls;
        stats.data_messages += s.data_messages;
        stats.local_deliveries += s.local_deliveries;
        stats.horizon_announcements += s.horizon_announcements;
        stats.blocked_waits += s.blocked_waits;
        for (g, p) in sites {
            slots[g] = Some(p);
        }
    }
    let parts = slots.into_iter().map(|s| s.expect("every partition returned")).collect();
    (parts, stats)
}

/// One shard's event loop. `sites` are (global index, partition) pairs.
fn shard_loop<P: Partition>(
    sites: &mut [(usize, P)],
    me: usize,
    shards: usize,
    rx: &crossbeam::channel::Receiver<Wire<P::Msg>>,
    txs: &[Sender<Wire<P::Msg>>],
    lookahead: f64,
) -> SyncStats {
    let mut stats = SyncStats::default();
    // Latest horizon read from each other shard: a promise it will send
    // nothing (simulated-)earlier. 0 is the trivially true initial bound.
    let mut h = vec![0.0f64; shards];
    let mut announced = f64::NEG_INFINITY;
    let mut seqs = vec![0u64; sites.len()];
    let mut out: Vec<Envelope<P::Msg>> = Vec::new();
    let mut times = vec![0.0f64; sites.len()];

    // Deliver one wire item. Data for global site g lands at local g / shards.
    macro_rules! take {
        ($w:expr) => {
            match $w {
                Wire::Data(env) => {
                    let (g, site) = &mut sites[env.dst / shards];
                    debug_assert_eq!(*g, env.dst);
                    site.deliver(env);
                }
                Wire::Horizon { shard, time } => {
                    if time > h[shard] {
                        h[shard] = time;
                    }
                }
            }
        };
    }

    loop {
        while let Ok(w) = rx.try_recv() {
            take!(w);
        }
        let ext = (0..shards).filter(|&q| q != me).map(|q| h[q]).fold(f64::INFINITY, f64::min);
        let ext_bound = ext + lookahead; // INF + L = INF when neighbors are done

        // Advance owned partitions while any next action fits the window.
        let mut progressed = false;
        loop {
            for (t, (_, p)) in times.iter_mut().zip(sites.iter_mut()) {
                *t = p.next_time();
            }
            let (imin, &tmin) = times
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                .expect("shards own at least one partition");
            // `>=` also stops the INF-vs-INF case (all idle, neighbors done).
            if tmin >= ext_bound {
                break;
            }
            let second = times
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != imin)
                .map(|(_, &t)| t)
                .fold(f64::INFINITY, f64::min);
            let bound = ext_bound.min(second + lookahead);
            let src_global = sites[imin].0;
            sites[imin].1.advance(bound, &mut out);
            stats.advance_calls += 1;
            progressed = true;
            for mut env in out.drain(..) {
                stamp(&mut env, src_global, &mut seqs[imin], tmin, lookahead);
                let dst_shard = env.dst % shards;
                if dst_shard == me {
                    let (g, site) = &mut sites[env.dst / shards];
                    debug_assert_eq!(*g, env.dst);
                    site.deliver(env);
                    stats.local_deliveries += 1;
                } else {
                    // The peer may have exited already (it is fully done
                    // and so cannot need this shard's traffic).
                    let _ = txs[dst_shard].send(Wire::Data(env));
                    stats.data_messages += 1;
                }
            }
        }

        // Announce the horizon: a lower bound on this shard's future send
        // times. The next local action is no earlier than min(next local
        // event, earliest possible inbound delivery), and a fully-done
        // shard will never send again no matter what arrives.
        let t_local = sites.iter_mut().map(|(_, p)| p.next_time()).fold(f64::INFINITY, f64::min);
        let all_done = sites.iter_mut().all(|(_, p)| p.done());
        let hp = if all_done { f64::INFINITY } else { t_local.min(ext_bound) };
        if hp > announced {
            announced = hp;
            for (q, tx) in txs.iter().enumerate() {
                if q != me {
                    let _ = tx.send(Wire::Horizon { shard: me, time: hp });
                    stats.horizon_announcements += 1;
                }
            }
        }

        if all_done && ext.is_infinite() {
            // Everyone announced infinity: no shard will ever send again.
            break;
        }
        if !progressed {
            // Blocked: our window is exhausted. FIFO channels guarantee
            // the wake-up (data or a higher horizon) that extends it; the
            // all-blocked state is unreachable because the minimum-
            // horizon shard's window always admits its own next action.
            match rx.recv() {
                Ok(w) => {
                    stats.blocked_waits += 1;
                    take!(w);
                }
                Err(_) => break, // every sender exited: nothing more can come
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Toy partition for protocol tests: a node in a message-passing ring
    /// or star. It holds pre-planned "work items" (time, then forward a
    /// token to a neighbor with some remaining hop budget) plus tokens
    /// received from peers; processing is purely message-driven after the
    /// initial seeds. Every send is logged so runs can be compared.
    struct Relay {
        id: usize,
        /// Pending local actions as (time, src, seq, hops) — seeds carry
        /// src = self.
        inbox: BinaryHeap<Reverse<(u64, usize, u64, u32)>>,
        /// Next neighbor in the forwarding cycle.
        next: usize,
        /// Bounce mode (a star hub): return each token to its sender
        /// instead of forwarding to `next`.
        bounce: bool,
        /// Message latency to `next` (integer micro-ticks; times are f64
        /// but integral values keep comparisons exact).
        latency: u64,
        /// Sends this relay will still perform (known up front, so
        /// `done()` can honour the strong never-send-again contract).
        sends_left: u64,
        /// Log of processed items: (time, src, seq, hops).
        log: Vec<(u64, usize, u64, u32)>,
    }

    impl Relay {
        fn tkey(t: f64) -> u64 {
            t as u64
        }
    }

    impl Partition for Relay {
        type Msg = u32; // remaining hops

        fn next_time(&mut self) -> f64 {
            self.inbox.peek().map_or(f64::INFINITY, |Reverse((t, ..))| *t as f64)
        }

        fn advance(&mut self, bound: f64, out: &mut Vec<Envelope<u32>>) {
            while let Some(&Reverse((t, src, seq, hops))) = self.inbox.peek() {
                if t as f64 >= bound {
                    break;
                }
                self.inbox.pop();
                self.log.push((t, src, seq, hops));
                if hops > 0 {
                    let dst = if self.bounce && src != self.id { src } else { self.next };
                    out.push(Envelope {
                        time: (t + self.latency) as f64,
                        src: self.id,
                        dst,
                        seq: 0,
                        payload: hops - 1,
                    });
                    self.sends_left -= 1;
                }
            }
        }

        fn deliver(&mut self, env: Envelope<u32>) {
            self.inbox.push(Reverse((Self::tkey(env.time), env.src, env.seq, env.payload)));
        }

        fn done(&mut self) -> bool {
            self.sends_left == 0
        }
    }

    /// A ring of `n` relays with the given per-hop latencies; relay 0
    /// seeds a token that makes `hops` hops around the ring.
    fn ring(n: usize, hops: u32, latencies: &[u64]) -> Vec<Relay> {
        let mut relays: Vec<Relay> = (0..n)
            .map(|id| Relay {
                id,
                inbox: BinaryHeap::new(),
                next: (id + 1) % n,
                bounce: false,
                latency: latencies[id % latencies.len()],
                sends_left: 0,
                log: Vec::new(),
            })
            .collect();
        // Each relay forwards once per token visit with hops remaining.
        for k in 0..=hops {
            let at = (k as usize) % n;
            if hops - k > 0 {
                relays[at].sends_left += 1;
            }
        }
        relays[0].inbox.push(Reverse((1, 0, u64::MAX, hops))); // seed at t=1
        relays
    }

    /// A star: relay 0 is the hub (bounce mode — it returns every token
    /// to its sender); every leaf seeds a token that bounces
    /// leaf -> hub -> leaf for `round_trips` round trips.
    fn star(leaves: usize, round_trips: u32) -> Vec<Relay> {
        let hops = round_trips * 2;
        let mut relays: Vec<Relay> = (0..=leaves)
            .map(|id| Relay {
                id,
                inbox: BinaryHeap::new(),
                next: 0, // leaves forward to the hub; the hub bounces
                bounce: id == 0,
                latency: 2 + id as u64,
                sends_left: 0,
                log: Vec::new(),
            })
            .collect();
        for leaf in 1..=leaves {
            relays[leaf].inbox.push(Reverse((1 + leaf as u64, leaf, u64::MAX, hops)));
            // The token's hop counts alternate: the leaf processes hops
            // 2R, 2R-2, ..., 0 (sends R times), the hub 2R-1, ..., 1
            // (sends R times).
            relays[leaf].sends_left += u64::from(round_trips);
            relays[0].sends_left += u64::from(round_trips);
        }
        relays
    }

    fn logs(relays: &[Relay]) -> Vec<Vec<(u64, usize, u64, u32)>> {
        relays.iter().map(|r| r.log.clone()).collect()
    }

    #[test]
    fn sequential_ring_passes_the_token_every_hop() {
        let mut r = ring(3, 7, &[2, 3, 5]);
        run_sequential(&mut r, 1.0);
        let total: usize = r.iter().map(|x| x.log.len()).sum();
        assert_eq!(total, 8, "seed + 7 forwards");
        assert!(r.iter_mut().all(|x| x.done()));
    }

    #[test]
    fn parallel_matches_sequential_on_a_ring_at_every_shard_count() {
        let mut reference = ring(5, 23, &[2, 3, 5, 7, 11]);
        run_sequential(&mut reference, 1.0);
        let want = logs(&reference);
        for shards in 1..=5 {
            let (got, stats) = run_parallel(ring(5, 23, &[2, 3, 5, 7, 11]), shards, 1.0);
            assert_eq!(logs(&got), want, "shards={shards}");
            assert_eq!(stats.shards, shards.clamp(1, 5));
        }
    }

    #[test]
    fn parallel_matches_sequential_on_a_star() {
        let mut reference = star(4, 6);
        run_sequential(&mut reference, 1.0);
        let want = logs(&reference);
        for shards in [2, 3, 5] {
            let (got, _) = run_parallel(star(4, 6), shards, 1.0);
            assert_eq!(logs(&got), want, "shards={shards}");
        }
    }

    #[test]
    fn logs_are_processed_in_nondecreasing_time_order() {
        // Lookahead safety, observed from the receiver side: no relay
        // ever processes an item that is older than one it already
        // processed (a late straggler would betray an unsafe window).
        let (relays, _) = run_parallel(ring(4, 31, &[2, 5, 3, 4]), 2, 2.0);
        for r in &relays {
            for w in r.log.windows(2) {
                assert!(w[0].0 <= w[1].0, "relay {} went back in time: {w:?}", r.id);
            }
        }
    }

    #[test]
    fn null_messages_flow_and_blocks_resolve() {
        let (_, stats) = run_parallel(ring(4, 40, &[3, 4, 5, 6]), 4, 3.0);
        assert!(stats.horizon_announcements > 0, "protocol must announce horizons");
        assert_eq!(stats.partitions, 4);
        assert_eq!(stats.shards, 4);
    }

    #[test]
    fn one_shard_parallel_is_the_sequential_driver() {
        let mut reference = ring(3, 9, &[2, 2, 2]);
        let s1 = run_sequential(&mut reference, 1.0);
        let (got, s2) = run_parallel(ring(3, 9, &[2, 2, 2]), 1, 1.0);
        assert_eq!(logs(&got), logs(&reference));
        assert_eq!(s1.advance_calls, s2.advance_calls);
        assert_eq!(s2.shards, 1);
    }

    #[test]
    #[should_panic(expected = "strictly positive lookahead")]
    fn zero_lookahead_rejected() {
        let mut r = ring(2, 1, &[1]);
        run_sequential(&mut r, 0.0);
    }
}
