//! Flow specifications and runtime state.

use crate::ids::{ResourceId, Tag};
use crate::model::WanSpec;
use crate::route::Route;

/// Lifecycle of a flow inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowStatus {
    /// Waiting for its start latency to elapse; holds no bandwidth.
    Pending,
    /// Progressing; holds a max–min fair share of every route resource.
    Active,
    /// Demand fully served; the completion event has been delivered.
    Completed,
    /// Cancelled by the caller before completion.
    Cancelled,
}

/// Specification of a flow to start on the engine.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Total demand: bytes for data flows, flops for compute flows.
    pub demand: f64,
    /// Resources used *simultaneously* while the flow progresses. Stored
    /// inline (see [`Route`]) so building a spec does not allocate for the
    /// short routes simulators issue in their steady state.
    pub(crate) route: Route,
    /// Opaque payload returned with the completion event.
    pub tag: Tag,
    /// Optional per-flow rate cap (e.g. a per-connection limit).
    pub rate_cap: Option<f64>,
    /// Delay before the flow starts consuming bandwidth (network latency,
    /// disk seek, protocol overhead). The completion event therefore fires
    /// at `start + latency + demand / harmonic-mean-rate`.
    pub latency: f64,
    /// Optional WAN annotation: propagation delay and bottleneck resource,
    /// consumed by dynamic bandwidth models ([`crate::BandwidthModel`]).
    /// Inert under the default max–min model.
    pub wan: Option<WanSpec>,
}

impl FlowSpec {
    /// A plain flow: no cap, no latency.
    #[inline]
    pub fn new(demand: f64, route: &[ResourceId], tag: Tag) -> Self {
        Self {
            demand,
            route: Route::from_slice(route),
            tag,
            rate_cap: None,
            latency: 0.0,
            wan: None,
        }
    }

    /// The route the flow will hold while active.
    pub fn route(&self) -> &[ResourceId] {
        self.route.as_slice()
    }

    /// Set a per-flow rate cap.
    #[inline]
    pub fn with_cap(mut self, cap: f64) -> Self {
        assert!(cap.is_finite() && cap > 0.0, "rate cap must be positive");
        self.rate_cap = Some(cap);
        self
    }

    /// Set a start latency.
    #[inline]
    pub fn with_latency(mut self, latency: f64) -> Self {
        assert!(latency.is_finite() && latency >= 0.0, "latency must be non-negative");
        self.latency = latency;
        self
    }

    /// Annotate the flow as a WAN transfer with one-way propagation
    /// `delay` whose QDisc bottleneck is `bottleneck` (must be on the
    /// route). Ignored by static bandwidth models.
    #[inline]
    pub fn with_wan(mut self, delay: f64, bottleneck: ResourceId) -> Self {
        assert!(delay.is_finite() && delay >= 0.0, "WAN delay must be non-negative");
        self.wan = Some(WanSpec { delay, bottleneck });
        self
    }

    pub(crate) fn validate(&self) {
        assert!(
            self.demand.is_finite() && self.demand >= 0.0,
            "flow demand must be non-negative and finite, got {}",
            self.demand
        );
    }
}

/// Internal runtime state of a flow.
///
/// Progress is settled lazily: `remaining` is the demand left as of
/// `last_settled`; the true remaining at engine time `t` is
/// `remaining - rate * (t - last_settled)`. The engine settles a flow
/// whenever its rate changes or it is observed.
#[derive(Debug, Clone)]
pub(crate) struct FlowState {
    pub demand: f64,
    pub remaining: f64,
    pub rate: f64,
    /// Engine time at which `remaining` was last brought up to date.
    pub last_settled: f64,
    /// Per-flow rate cap; `f64::INFINITY` when uncapped (stored raw so the
    /// hot flow table stays at 80 bytes per entry).
    pub rate_cap: f64,
    pub route: Route,
    pub tag: Tag,
    pub status: FlowStatus,
}

impl FlowState {
    /// Consume a spec, moving its route buffer into the runtime state.
    #[inline]
    pub fn from_spec(spec: FlowSpec) -> Self {
        Self {
            demand: spec.demand,
            remaining: spec.demand,
            rate: 0.0,
            last_settled: 0.0,
            rate_cap: spec.rate_cap.unwrap_or(f64::INFINITY),
            route: spec.route,
            tag: spec.tag,
            status: if spec.latency > 0.0 { FlowStatus::Pending } else { FlowStatus::Active },
        }
    }

    /// Whether the remaining demand is numerically zero.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.remaining <= crate::ABS_EPS.max(self.demand * crate::REL_EPS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_state_stays_within_80_bytes() {
        // The flow table is append-only and grows to one entry per started
        // flow; its entry size is cold-build memory traffic.
        assert!(std::mem::size_of::<FlowState>() <= 80);
    }

    #[test]
    fn builder_sets_fields() {
        let spec = FlowSpec::new(100.0, &[ResourceId(0)], Tag(7)).with_cap(10.0).with_latency(0.5);
        assert_eq!(spec.demand, 100.0);
        assert_eq!(spec.rate_cap, Some(10.0));
        assert_eq!(spec.latency, 0.5);
        assert_eq!(spec.tag, Tag(7));
    }

    #[test]
    fn latency_makes_flow_pending() {
        let spec = FlowSpec::new(1.0, &[], Tag(0)).with_latency(1.0);
        assert_eq!(FlowState::from_spec(spec.clone()).status, FlowStatus::Pending);
        let spec = FlowSpec::new(1.0, &[], Tag(0));
        assert_eq!(FlowState::from_spec(spec.clone()).status, FlowStatus::Active);
    }

    #[test]
    fn done_uses_relative_epsilon() {
        let spec = FlowSpec::new(1e12, &[], Tag(0));
        let mut st = FlowState::from_spec(spec.clone());
        st.remaining = 100.0; // 1e-10 of demand: below REL_EPS * demand = 1000
        assert!(st.is_done());
        st.remaining = 1e6;
        assert!(!st.is_done());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_demand_rejected() {
        FlowSpec::new(-1.0, &[], Tag(0)).validate();
    }
}
