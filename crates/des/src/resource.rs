//! Resource descriptions: capacity models and specs.

/// How a resource's effective capacity depends on its load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityModel {
    /// Fixed capacity regardless of the number of concurrent flows.
    Constant(f64),
    /// Contention-degrading capacity: with `n` concurrent flows the
    /// aggregate effective capacity is `base * n / (n + alpha * (n - 1))`.
    ///
    /// With `n = 1` this is exactly `base`; as `n` grows the aggregate
    /// tends to `base / (1 + alpha)`. This models rotating-disk seek
    /// overhead under concurrent readers — the effect the paper notes the
    /// calibrated simulator does *not* model ("HDD effects (e.g., seek
    /// times) are not modeled by the simulator"), which is why it belongs
    /// to the ground-truth emulator only.
    Degrading {
        /// Capacity seen by a single flow.
        base: f64,
        /// Contention coefficient (0 = no degradation).
        alpha: f64,
    },
}

impl CapacityModel {
    /// Effective aggregate capacity with `n_flows` concurrent flows.
    #[inline]
    pub fn effective(&self, n_flows: usize) -> f64 {
        match *self {
            CapacityModel::Constant(c) => c,
            CapacityModel::Degrading { base, alpha } => {
                if n_flows <= 1 {
                    base
                } else {
                    let n = n_flows as f64;
                    base * n / (n + alpha * (n - 1.0))
                }
            }
        }
    }

    /// The nominal (uncontended) capacity.
    #[inline]
    pub fn nominal(&self) -> f64 {
        match *self {
            CapacityModel::Constant(c) => c,
            CapacityModel::Degrading { base, .. } => base,
        }
    }
}

/// Specification of a resource to register with the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceSpec {
    /// Capacity model (bytes/s or flop/s — units are the caller's concern).
    pub capacity: CapacityModel,
}

impl ResourceSpec {
    /// A constant-capacity resource.
    pub fn constant(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "resource capacity must be positive and finite, got {capacity}"
        );
        Self { capacity: CapacityModel::Constant(capacity) }
    }

    /// A contention-degrading resource (see [`CapacityModel::Degrading`]).
    pub fn degrading(base: f64, alpha: f64) -> Self {
        assert!(base.is_finite() && base > 0.0, "base capacity must be positive");
        assert!(alpha >= 0.0, "contention coefficient must be non-negative");
        Self { capacity: CapacityModel::Degrading { base, alpha } }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_capacity_ignores_load() {
        let m = CapacityModel::Constant(100.0);
        assert_eq!(m.effective(1), 100.0);
        assert_eq!(m.effective(64), 100.0);
    }

    #[test]
    fn degrading_capacity_matches_formula() {
        let m = CapacityModel::Degrading { base: 20.0, alpha: 0.25 };
        assert_eq!(m.effective(1), 20.0);
        // n=2: 20 * 2 / (2 + 0.25) = 17.77..
        assert!((m.effective(2) - 20.0 * 2.0 / 2.25).abs() < 1e-12);
        // Asymptote: base / (1 + alpha) = 16.
        assert!((m.effective(10_000) - 16.0).abs() < 0.01);
    }

    #[test]
    fn degrading_is_monotone_decreasing_in_load() {
        let m = CapacityModel::Degrading { base: 20.0, alpha: 0.3 };
        let mut prev = f64::INFINITY;
        for n in 1..50 {
            let c = m.effective(n);
            assert!(c <= prev + 1e-12, "capacity increased at n={n}");
            prev = c;
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = ResourceSpec::constant(0.0);
    }

    #[test]
    fn nominal_reports_base() {
        assert_eq!(ResourceSpec::degrading(20.0, 0.5).capacity.nominal(), 20.0);
        assert_eq!(ResourceSpec::constant(7.0).capacity.nominal(), 7.0);
    }
}
