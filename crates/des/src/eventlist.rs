//! The completion event list.
//!
//! The engine pushes one entry per rate assignment and pops the earliest
//! at each step — hundreds of thousands of push/pop pairs per simulation,
//! the single hottest data structure in the kernel. Entries order by
//! `(time, flow)`: simultaneous completions pop in id order, which is
//! deterministic but — since ids pack the slot generation in their high
//! bits — no longer the flow *start* order once slots recycle. The `Ord`
//! is written inverted (min-first) so the structure needs no `Reverse`
//! wrapper on the hot path.
//!
//! The backing store is `std`'s binary heap: a hand-rolled 4-ary d-heap
//! was benchmarked against it on the CMS chunk-stream workload and lost
//! by ~30% (std's hole-based sift loops are extremely well tuned), so the
//! wrapper deliberately stays thin. Keeping the type behind this module
//! boundary is what made that experiment a five-line swap.

use crate::ids::FlowId;

/// A scheduled completion. Stale entries (the flow completed, was
/// cancelled, or changed rate since the push) are detected by the epoch
/// stamp and dropped on pop; the epoch does not participate in ordering.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompletionEntry {
    pub time: f64,
    pub flow: FlowId,
    pub epoch: u32,
}

impl PartialEq for CompletionEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.flow == other.flow
    }
}
impl Eq for CompletionEntry {}
impl PartialOrd for CompletionEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CompletionEntry {
    /// Inverted: the *earliest* entry is the maximum, so a plain max-heap
    /// pops min-first without `Reverse` wrappers.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.time.total_cmp(&self.time).then_with(|| other.flow.cmp(&self.flow))
    }
}

/// Min-first event list over completion entries.
#[derive(Debug, Default)]
pub(crate) struct EventList {
    heap: std::collections::BinaryHeap<CompletionEntry>,
}

impl EventList {
    /// Drop all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Earliest entry, if any.
    #[inline]
    pub fn peek(&self) -> Option<&CompletionEntry> {
        self.heap.peek()
    }

    /// Insert an entry.
    #[inline]
    pub fn push(&mut self, e: CompletionEntry) {
        self.heap.push(e);
    }

    /// Remove and return the earliest entry.
    #[inline]
    pub fn pop(&mut self) -> Option<CompletionEntry> {
        self.heap.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(time: f64, flow: u64) -> CompletionEntry {
        CompletionEntry { time, flow: FlowId(flow), epoch: 0 }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventList::default();
        for (t, f) in [(3.0, 0), (1.0, 1), (2.0, 2), (0.5, 3), (2.5, 4)] {
            q.push(entry(t, f));
        }
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|e| e.time)).collect();
        assert_eq!(times, vec![0.5, 1.0, 2.0, 2.5, 3.0]);
    }

    #[test]
    fn equal_times_pop_in_flow_order() {
        let mut q = EventList::default();
        for f in [5u64, 1, 9, 3, 7] {
            q.push(entry(1.0, f));
        }
        q.push(entry(0.5, 100));
        let flows: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.flow.0)).collect();
        assert_eq!(flows, vec![100, 1, 3, 5, 7, 9]);
    }

    #[test]
    fn interleaved_push_pop_is_total_ordered() {
        // Pseudo-random push/pop mix: every pop must be <= every entry
        // still in the list (with the (time, flow) order).
        let mut q = EventList::default();
        let mut x = 0x2545_f491u64;
        let mut live = 0usize;
        let mut last: Option<(f64, u64)> = None;
        for step in 0..10_000u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if !x.is_multiple_of(3) || live == 0 {
                let t = (x % 1000) as f64 / 7.0;
                q.push(entry(t, u64::from(step)));
                live += 1;
                // A new earlier key may arrive after pops; reset the watermark.
                if let Some(l) = last {
                    if (t, u64::from(step)) < l {
                        last = Some((t, u64::from(step)));
                    }
                }
            } else {
                let e = q.pop().expect("live entries remain");
                live -= 1;
                if let Some(l) = last {
                    assert!((e.time, e.flow.0) >= l, "order violated");
                }
                last = Some((e.time, e.flow.0));
            }
        }
        let mut prev = f64::NEG_INFINITY;
        while let Some(e) = q.pop() {
            assert!(e.time >= prev);
            prev = e.time;
        }
    }

    #[test]
    fn clear_keeps_working() {
        let mut q = EventList::default();
        q.push(entry(1.0, 1));
        q.clear();
        assert!(q.peek().is_none());
        q.push(entry(2.0, 2));
        assert_eq!(q.pop().unwrap().time, 2.0);
    }
}
