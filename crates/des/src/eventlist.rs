//! The event queues: completion list and timer backing store.
//!
//! The engine pushes one completion entry per rate assignment and pops the
//! earliest at each step — hundreds of thousands of push/pop pairs per
//! simulation, the single hottest data structure in the kernel. Entries
//! order by `(time, flow, epoch)`: simultaneous completions pop in id
//! order, which is deterministic but — since ids pack the slot generation
//! in their high bits — no longer the flow *start* order once slots
//! recycle. The `Ord` is written inverted (min-first) so no structure
//! needs `Reverse` wrappers on the hot path.
//!
//! ## Backends
//!
//! The backing store is a two-backend [`EventQueue`]:
//!
//! * **Heap** — `std`'s binary heap, the default and the differential
//!   oracle. A hand-rolled 4-ary d-heap was benchmarked against it on the
//!   CMS chunk-stream workload and lost by ~30% (std's hole-based sift
//!   loops are extremely well tuned), and so did a *naive* fixed-width
//!   calendar queue; keeping the type behind this module boundary is what
//!   made those experiments five-line swaps.
//! * **Calendar** — a Brown-style calendar queue whose bucket width is
//!   retuned in O(1) from an incrementally-maintained inter-pop gap
//!   estimate (no sampling walk over the population), and whose day
//!   doubles by rebuilding but halves by merging physical bucket pairs
//!   in place. O(1) amortized push/pop when the width matches the event
//!   density, which is the steady-state serving regime (large,
//!   slowly-drifting event populations) the heap's O(log n) sift starts
//!   to feel.
//! * **Auto** — starts on the heap and migrates to the calendar when the
//!   live population crosses a high-water mark, so short runs keep the
//!   heap's low constants and long steady-state runs get the calendar.
//!
//! Pops are **order-identical** across backends: the entry `Ord` is a
//! total order, equal times always hash to the same calendar bucket, and
//! each bucket is kept sorted by the same `Ord` — so every trace hash in
//! the repo is invariant under the backend choice (pinned by the
//! differential oracle in this module's tests and by
//! `tests/eventlist_backends.rs`).

use crate::ids::FlowId;

/// Which backing store the engine's event queues (completions *and*
/// timers) use. Selected per run via `SimConfig` / `exp sweep
/// --event-list`; the default heap is the differential oracle every other
/// backend must match pop-for-pop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventListBackend {
    /// `std::collections::BinaryHeap` (default; the oracle).
    #[default]
    Heap,
    /// Auto-tuned Brown-style calendar queue.
    Calendar,
    /// Heap until the live population crosses a high-water mark, then
    /// calendar.
    Auto,
}

impl EventListBackend {
    /// Stable lowercase label (codec / CLI / CSV form).
    pub fn as_str(self) -> &'static str {
        match self {
            EventListBackend::Heap => "heap",
            EventListBackend::Calendar => "calendar",
            EventListBackend::Auto => "auto",
        }
    }
}

impl std::str::FromStr for EventListBackend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "heap" => Ok(EventListBackend::Heap),
            "calendar" => Ok(EventListBackend::Calendar),
            "auto" => Ok(EventListBackend::Auto),
            other => Err(format!("unknown event-list backend '{other}' (heap|calendar|auto)")),
        }
    }
}

impl std::fmt::Display for EventListBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Live population at which an [`EventListBackend::Auto`] queue migrates
/// from the heap to the calendar. Complete-mode scenarios (a few hundred
/// live flows/timers at most) stay on the heap; multi-day horizon runs
/// that schedule thousands of release timers cross it immediately.
pub(crate) const AUTO_HIGH_WATER: usize = 512;

/// An entry the queues can hold. `Ord` must be a **total order written
/// inverted** (the earliest entry compares greatest) so a plain std
/// max-heap pops min-first; the calendar relies on the same inversion to
/// keep each bucket's earliest entry at the `Vec` tail.
pub(crate) trait EventKey: Ord + Copy {
    /// The entry's absolute simulated time (the bucket-mapping key).
    fn time(&self) -> f64;
}

/// A scheduled completion. Stale entries (the flow completed, was
/// cancelled, or changed rate since the push) are detected by the epoch
/// stamp and dropped on pop. The epoch participates as the *last*
/// tie-break only so the order is total (a flow reschedule may leave two
/// entries at identical `(time, flow)`); both orderings of such a pair
/// are consumed by the same skim loop, but the calendar/heap oracle wants
/// bit-identical pop sequences, not merely equivalent ones.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompletionEntry {
    pub time: f64,
    pub flow: FlowId,
    pub epoch: u32,
}

impl PartialEq for CompletionEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.flow == other.flow && self.epoch == other.epoch
    }
}
impl Eq for CompletionEntry {}
impl PartialOrd for CompletionEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CompletionEntry {
    /// Inverted: the *earliest* entry is the maximum, so a plain max-heap
    /// pops min-first without `Reverse` wrappers.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.flow.cmp(&self.flow))
            .then_with(|| other.epoch.cmp(&self.epoch))
    }
}

impl EventKey for CompletionEntry {
    #[inline]
    fn time(&self) -> f64 {
        self.time
    }
}

/// Operation counters a queue accumulates; merged into [`crate::Stats`]
/// by the engine (completions + timers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct QueueCounters {
    /// Entries pushed.
    pub pushes: u64,
    /// Entries popped (including entries the caller then drops as stale).
    pub pops: u64,
    /// Calendar resizes: day doubling/halving, width retunes, and the
    /// auto backend's heap→calendar migration.
    pub resizes: u64,
    /// Fruitless full-day calendar scans that fell back to a direct
    /// search over every bucket (the "overflow bucket" pathology a
    /// fixed-width calendar suffers; retuning keeps this near zero).
    pub overflow_hits: u64,
}

/// Smallest calendar day (bucket count); always a power of two.
const MIN_BUCKETS: usize = 16;
/// EWMA weight of the newest observed inter-pop gap in the width
/// estimate. 1/8 follows the serving regime within a few dozen pops
/// without letting one outlier gap move the width much.
const GAP_ALPHA: f64 = 0.125;

/// Brown-style calendar queue. Each bucket is kept sorted by the inverted
/// entry `Ord` (earliest at the `Vec` tail), so the per-bucket minimum
/// pops in O(1) and ties inside a bucket break exactly like the heap.
///
/// Bucket mapping is by **virtual bucket number** `floor(time / width)`
/// (physical index = virtual & mask). The dequeue scan walks virtual
/// buckets from the cursor and compares virtual bucket numbers — never
/// rounded window edges — so the scan can neither skip nor double-visit
/// an event regardless of floating-point rounding: equal times share a
/// bucket, and all events of virtual bucket `v` sort strictly before all
/// events of `v' > v`.
#[derive(Debug)]
struct Calendar<T> {
    buckets: Vec<Vec<T>>,
    /// `buckets.len() - 1`; the bucket count is a power of two.
    mask: usize,
    /// Bucket width in simulated seconds (> 0, finite).
    width: f64,
    len: usize,
    /// Scan cursor: no live entry has a virtual bucket below this.
    cur_vb: i64,
    /// Memoized physical bucket holding the current minimum (set by a
    /// successful scan, invalidated by any push/pop).
    min_memo: Option<usize>,
    /// Scratch for resize/migration (kept allocated).
    scratch: Vec<T>,
    /// EWMA of observed inter-pop gaps (`0.0` until the first strictly
    /// positive gap) — the O(1) width estimate a retune reads.
    gap_ewma: f64,
    /// Time of the most recent pop (`NAN` before the first pop).
    last_pop: f64,
    /// Extremes of every timestamp pushed since the last clear; the
    /// width bootstrap while no pop gap has been observed yet.
    t_min: f64,
    t_max: f64,
}

impl<T: EventKey> Default for Calendar<T> {
    fn default() -> Self {
        Calendar {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            mask: MIN_BUCKETS - 1,
            width: 1.0,
            len: 0,
            cur_vb: i64::MIN,
            min_memo: None,
            scratch: Vec::new(),
            gap_ewma: 0.0,
            last_pop: f64::NAN,
            t_min: f64::INFINITY,
            t_max: f64::NEG_INFINITY,
        }
    }
}

impl<T: EventKey> Calendar<T> {
    /// Drop all entries, keeping every bucket allocation.
    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
        self.cur_vb = i64::MIN;
        self.min_memo = None;
        self.gap_ewma = 0.0;
        self.last_pop = f64::NAN;
        self.t_min = f64::INFINITY;
        self.t_max = f64::NEG_INFINITY;
    }

    /// Virtual bucket of a timestamp. The float→int cast saturates, so
    /// times beyond the representable range all collapse into one bucket
    /// — still correct (in-bucket order is the full `Ord`), just slower.
    #[inline]
    fn virtual_bucket(&self, t: f64) -> i64 {
        (t / self.width).floor() as i64
    }

    fn push(&mut self, e: T, counters: &mut QueueCounters) {
        let t = e.time();
        if t < self.t_min {
            self.t_min = t;
        }
        if t > self.t_max {
            self.t_max = t;
        }
        let vb = self.virtual_bucket(t);
        let b = (vb as usize) & self.mask;
        // Inverted Ord: ascending sort order is descending time, so the
        // earliest entry lands at the tail. The order is total, so only
        // `Err` positions occur in practice.
        let pos = match self.buckets[b].binary_search(&e) {
            Ok(p) | Err(p) => p,
        };
        self.buckets[b].insert(pos, e);
        self.len += 1;
        self.min_memo = None;
        if vb < self.cur_vb || self.len == 1 {
            self.cur_vb = vb;
        }
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2, counters);
        }
    }

    #[inline]
    fn peek(&mut self, counters: &mut QueueCounters) -> Option<&T> {
        if self.len == 0 {
            return None;
        }
        let b = self.find_min_bucket(counters);
        self.buckets[b].last()
    }

    fn pop(&mut self, counters: &mut QueueCounters) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let b = self.find_min_bucket(counters);
        let e = self.buckets[b].pop().expect("min bucket is non-empty");
        self.len -= 1;
        self.min_memo = None;
        let t = e.time();
        self.cur_vb = self.virtual_bucket(t);
        // Feed the incremental width estimate: the gap between successive
        // pops is exactly the event density the next scans will see.
        // `NAN < t` is false, so the first pop only seeds `last_pop`.
        let gap = t - self.last_pop;
        if gap > 0.0 && gap.is_finite() {
            self.gap_ewma = if self.gap_ewma > 0.0 {
                self.gap_ewma + (gap - self.gap_ewma) * GAP_ALPHA
            } else {
                gap
            };
        }
        self.last_pop = t;
        if self.len < self.buckets.len() / 2 && self.buckets.len() > MIN_BUCKETS {
            self.consolidate(counters);
        }
        Some(e)
    }

    /// Physical bucket holding the global minimum entry (`len > 0`).
    ///
    /// Walks virtual buckets from the cursor for one full day. A bucket
    /// tail qualifies iff its virtual bucket number equals the one under
    /// scan — the first qualifying tail is the entry with the globally
    /// smallest virtual bucket, and within a virtual bucket the tail *is*
    /// the `Ord` minimum. A fruitless full-day scan (population spread
    /// over more than one day — the overflow pathology) falls back to a
    /// direct search over all bucket tails.
    fn find_min_bucket(&mut self, counters: &mut QueueCounters) -> usize {
        if let Some(b) = self.min_memo {
            return b;
        }
        let n = self.buckets.len();
        for k in 0..n {
            let vb = self.cur_vb.saturating_add(k as i64);
            let b = (vb as usize) & self.mask;
            if let Some(e) = self.buckets[b].last() {
                if self.virtual_bucket(e.time()) == vb {
                    self.cur_vb = vb;
                    self.min_memo = Some(b);
                    return b;
                }
            }
        }
        counters.overflow_hits += 1;
        let mut best: Option<usize> = None;
        for (i, bucket) in self.buckets.iter().enumerate() {
            if let Some(e) = bucket.last() {
                // Inverted Ord: greater = earlier.
                if best.is_none_or(|bb| *e > *self.buckets[bb].last().expect("non-empty")) {
                    best = Some(i);
                }
            }
        }
        let b = best.expect("len > 0");
        self.cur_vb = self.virtual_bucket(self.buckets[b].last().expect("non-empty").time());
        self.min_memo = Some(b);
        b
    }

    /// Rebuild with `new_n` buckets, retuning the width from the sampled
    /// inter-event gap near the head of the queue (Brown's rule): the
    /// day only works when a bucket holds O(1) events of the *current*
    /// serving regime, and the head density is what the next pops see.
    fn resize(&mut self, new_n: usize, counters: &mut QueueCounters) {
        counters.resizes += 1;
        self.scratch.clear();
        for b in &mut self.buckets {
            self.scratch.append(b);
        }
        self.retune_width();
        if new_n > self.buckets.len() {
            self.buckets.resize_with(new_n, Vec::new);
        } else {
            self.buckets.truncate(new_n);
        }
        self.mask = new_n - 1;
        self.len = 0;
        self.min_memo = None;
        let mut min_vb = i64::MAX;
        let mut events = std::mem::take(&mut self.scratch);
        for e in events.drain(..) {
            let vb = self.virtual_bucket(e.time());
            min_vb = min_vb.min(vb);
            let b = (vb as usize) & self.mask;
            let pos = match self.buckets[b].binary_search(&e) {
                Ok(p) | Err(p) => p,
            };
            self.buckets[b].insert(pos, e);
            self.len += 1;
        }
        self.scratch = events;
        self.cur_vb = min_vb;
    }

    /// Estimate a new bucket width in O(1) from incrementally-maintained
    /// state: the EWMA of observed inter-pop gaps (the density the next
    /// pops will actually see), bootstrapped from the pushed time span
    /// while no gap has been observed yet (growth before the first pop).
    /// Spreads a few events per bucket, like Brown's sampled rule did,
    /// without walking any entries. Degenerate state (no positive gap,
    /// no span) keeps the current width.
    fn retune_width(&mut self) {
        let w = if self.gap_ewma > 0.0 {
            3.0 * self.gap_ewma
        } else if self.t_max > self.t_min && self.len > 0 {
            3.0 * (self.t_max - self.t_min) / self.len as f64
        } else {
            return;
        };
        if w.is_finite() && w > 0.0 {
            self.width = w;
        }
    }

    /// Halve the day by merging each upper-half bucket into its
    /// lower-half partner. Physical buckets `b` and `b + n/2` hold
    /// exactly the virtual buckets that collide once the top mask bit
    /// drops, and the width is untouched — so this is an O(moved
    /// entries) consolidation of a sparse day, not the full re-bucketing
    /// rebuild that growth performs. `cur_vb` stays valid: virtual
    /// bucket numbers never change, only their physical mapping.
    fn consolidate(&mut self, counters: &mut QueueCounters) {
        counters.resizes += 1;
        let half = self.buckets.len() / 2;
        for b in 0..half {
            let hi = std::mem::take(&mut self.buckets[b + half]);
            if hi.is_empty() {
                continue;
            }
            if self.buckets[b].is_empty() {
                self.buckets[b] = hi;
            } else {
                // Entries are `Copy` and the order total, so an unstable
                // re-sort of the merged pair reproduces the bucket
                // invariant (earliest at the tail) exactly.
                self.buckets[b].extend(hi);
                self.buckets[b].sort_unstable();
            }
        }
        self.buckets.truncate(half);
        self.mask = half - 1;
        self.min_memo = None;
    }
}

/// Min-first event queue with a selectable backend. Both the heap and
/// calendar structures are kept allocated for the queue's lifetime, so
/// [`EventQueue::clear`] (and the auto backend's migration) never
/// re-allocates across `Engine::reset` reuse.
#[derive(Debug)]
pub(crate) struct EventQueue<T: EventKey> {
    policy: EventListBackend,
    /// Whether the calendar is the live structure right now.
    on_calendar: bool,
    heap: std::collections::BinaryHeap<T>,
    cal: Calendar<T>,
    counters: QueueCounters,
}

impl<T: EventKey> Default for EventQueue<T> {
    fn default() -> Self {
        Self::with_backend(EventListBackend::default())
    }
}

impl<T: EventKey> EventQueue<T> {
    pub fn with_backend(policy: EventListBackend) -> Self {
        EventQueue {
            policy,
            on_calendar: policy == EventListBackend::Calendar,
            heap: std::collections::BinaryHeap::new(),
            cal: Calendar::default(),
            counters: QueueCounters::default(),
        }
    }

    /// Switch the backend policy, migrating any live entries. Pop order
    /// is backend-invariant, so this is observable only through timing
    /// and the calendar counters.
    pub fn set_backend(&mut self, policy: EventListBackend) {
        self.policy = policy;
        let want_cal = policy == EventListBackend::Calendar;
        if self.on_calendar != want_cal {
            let mut scratch_counters = QueueCounters::default();
            if want_cal {
                for e in std::mem::take(&mut self.heap) {
                    self.cal.push(e, &mut scratch_counters);
                }
            } else {
                while let Some(e) = self.cal.pop(&mut scratch_counters) {
                    self.heap.push(e);
                }
                self.cal.clear();
            }
            self.on_calendar = want_cal;
        }
    }

    /// Drop all entries and counters, keeping allocations (including the
    /// inactive backend's). An auto queue reverts to the heap so reused
    /// engines replay the migration deterministically.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cal.clear();
        self.on_calendar = self.policy == EventListBackend::Calendar;
        self.counters = QueueCounters::default();
    }

    /// Operation counters accumulated since the last [`EventQueue::clear`].
    #[inline]
    pub fn counters(&self) -> QueueCounters {
        self.counters
    }

    /// Earliest entry, if any.
    #[inline]
    pub fn peek(&mut self) -> Option<&T> {
        if self.on_calendar {
            self.cal.peek(&mut self.counters)
        } else {
            self.heap.peek()
        }
    }

    /// Insert an entry.
    #[inline]
    pub fn push(&mut self, e: T) {
        self.counters.pushes += 1;
        if self.on_calendar {
            self.cal.push(e, &mut self.counters);
        } else {
            self.heap.push(e);
            if self.policy == EventListBackend::Auto && self.heap.len() > AUTO_HIGH_WATER {
                self.counters.resizes += 1;
                for ev in std::mem::take(&mut self.heap) {
                    self.cal.push(ev, &mut self.counters);
                }
                self.on_calendar = true;
            }
        }
    }

    /// Remove and return the earliest entry.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        let e = if self.on_calendar { self.cal.pop(&mut self.counters) } else { self.heap.pop() };
        if e.is_some() {
            self.counters.pops += 1;
        }
        e
    }
}

/// Min-first event list over completion entries.
pub(crate) type EventList = EventQueue<CompletionEntry>;

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(time: f64, flow: u64) -> CompletionEntry {
        CompletionEntry { time, flow: FlowId(flow), epoch: 0 }
    }

    fn backends() -> [EventListBackend; 3] {
        [EventListBackend::Heap, EventListBackend::Calendar, EventListBackend::Auto]
    }

    #[test]
    fn pops_in_time_order() {
        for b in backends() {
            let mut q = EventList::with_backend(b);
            for (t, f) in [(3.0, 0), (1.0, 1), (2.0, 2), (0.5, 3), (2.5, 4)] {
                q.push(entry(t, f));
            }
            let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|e| e.time)).collect();
            assert_eq!(times, vec![0.5, 1.0, 2.0, 2.5, 3.0], "backend {b}");
        }
    }

    #[test]
    fn equal_times_pop_in_flow_order() {
        for b in backends() {
            let mut q = EventList::with_backend(b);
            for f in [5u64, 1, 9, 3, 7] {
                q.push(entry(1.0, f));
            }
            q.push(entry(0.5, 100));
            let flows: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.flow.0)).collect();
            assert_eq!(flows, vec![100, 1, 3, 5, 7, 9], "backend {b}");
        }
    }

    #[test]
    fn interleaved_push_pop_is_total_ordered() {
        // Pseudo-random push/pop mix: every pop must be <= every entry
        // still in the list (with the (time, flow) order).
        for backend in backends() {
            let mut q = EventList::with_backend(backend);
            let mut x = 0x2545_f491u64;
            let mut live = 0usize;
            let mut last: Option<(f64, u64)> = None;
            for step in 0..10_000u32 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if !x.is_multiple_of(3) || live == 0 {
                    let t = (x % 1000) as f64 / 7.0;
                    q.push(entry(t, u64::from(step)));
                    live += 1;
                    // A new earlier key may arrive after pops; reset the watermark.
                    if let Some(l) = last {
                        if (t, u64::from(step)) < l {
                            last = Some((t, u64::from(step)));
                        }
                    }
                } else {
                    let e = q.pop().expect("live entries remain");
                    live -= 1;
                    if let Some(l) = last {
                        assert!((e.time, e.flow.0) >= l, "order violated on {backend}");
                    }
                    last = Some((e.time, e.flow.0));
                }
            }
            let mut prev = f64::NEG_INFINITY;
            while let Some(e) = q.pop() {
                assert!(e.time >= prev);
                prev = e.time;
            }
        }
    }

    #[test]
    fn clear_keeps_working() {
        for b in backends() {
            let mut q = EventList::with_backend(b);
            q.push(entry(1.0, 1));
            q.clear();
            assert!(q.peek().is_none());
            q.push(entry(2.0, 2));
            assert_eq!(q.pop().unwrap().time, 2.0);
        }
    }

    #[test]
    fn auto_migrates_at_the_high_water_mark() {
        let mut q = EventList::with_backend(EventListBackend::Auto);
        for i in 0..(AUTO_HIGH_WATER as u64) {
            q.push(entry(i as f64 * 0.25, i));
        }
        assert!(!q.on_calendar, "below the mark the heap serves");
        assert_eq!(q.counters().resizes, 0);
        q.push(entry(7.0, 9999));
        assert!(q.on_calendar, "crossing the mark migrates to the calendar");
        assert!(q.counters().resizes >= 1);
        let mut prev = f64::NEG_INFINITY;
        let mut n = 0;
        while let Some(e) = q.pop() {
            assert!(e.time >= prev);
            prev = e.time;
            n += 1;
        }
        assert_eq!(n, AUTO_HIGH_WATER + 1);
    }

    #[test]
    fn auto_reverts_to_heap_on_clear() {
        let mut q = EventList::with_backend(EventListBackend::Auto);
        for i in 0..=(AUTO_HIGH_WATER as u64) {
            q.push(entry(i as f64, i));
        }
        assert!(q.on_calendar);
        q.clear();
        assert!(!q.on_calendar, "a cleared auto queue replays the migration");
        assert_eq!(q.counters(), QueueCounters::default());
    }

    #[test]
    fn set_backend_migrates_live_entries_both_ways() {
        let mut q = EventList::with_backend(EventListBackend::Heap);
        for (t, f) in [(3.0, 0), (1.0, 1), (1.0, 2), (0.25, 3)] {
            q.push(entry(t, f));
        }
        q.set_backend(EventListBackend::Calendar);
        assert_eq!(q.pop().unwrap().flow.0, 3);
        q.set_backend(EventListBackend::Heap);
        let flows: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.flow.0)).collect();
        assert_eq!(flows, vec![1, 2, 0]);
    }

    #[test]
    fn calendar_counts_pushes_pops_and_resizes() {
        let mut q = EventList::with_backend(EventListBackend::Calendar);
        // Enough entries to force several day doublings (> 2 * buckets).
        for i in 0..200u64 {
            q.push(entry((i % 37) as f64 * 0.5, i));
        }
        let c = q.counters();
        assert_eq!(c.pushes, 200);
        assert!(c.resizes >= 2, "200 entries over 16 starting buckets must grow: {c:?}");
        while q.pop().is_some() {}
        assert_eq!(q.counters().pops, 200);
    }

    #[test]
    fn width_retunes_from_the_incremental_pop_gap_estimate() {
        let mut q = EventList::with_backend(EventListBackend::Calendar);
        // Uniform 0.5 s gaps: every observed pop gap is exactly 0.5, so
        // the EWMA stays exactly 0.5 whatever the weight.
        for i in 0..24u64 {
            q.push(entry(i as f64 * 0.5, i));
        }
        for _ in 0..8 {
            q.pop();
        }
        assert_eq!(q.cal.gap_ewma, 0.5);
        // The next growth retune reads the estimate: width = 3 * gap.
        for i in 100..(100 + 2 * MIN_BUCKETS as u64) {
            q.push(entry(i as f64 * 0.5, i));
        }
        assert_eq!(q.cal.width, 1.5);
    }

    #[test]
    fn consolidation_halves_the_day_and_preserves_pop_order() {
        let mut q = EventList::with_backend(EventListBackend::Calendar);
        // Grow well past MIN_BUCKETS, then drain low enough to force
        // several consolidations on the way down.
        for i in 0..300u64 {
            q.push(entry((i % 97) as f64 * 0.25, i));
        }
        assert!(q.cal.buckets.len() > MIN_BUCKETS);
        let grow_resizes = q.counters().resizes;
        let mut prev = entry(f64::NEG_INFINITY, 0);
        let mut n = 0;
        while let Some(e) = q.pop() {
            assert!(e.time >= prev.time, "pop order violated after consolidation");
            prev = e;
            n += 1;
        }
        assert_eq!(n, 300);
        assert_eq!(q.cal.buckets.len(), MIN_BUCKETS, "a drained day shrinks to the minimum");
        assert!(
            q.counters().resizes > grow_resizes,
            "draining must consolidate: {:?}",
            q.counters()
        );
    }

    #[test]
    fn calendar_survives_widely_spread_times() {
        // Times spanning many orders of magnitude exercise the fruitless
        // full-day scan and its direct-search fallback.
        let mut q = EventList::with_backend(EventListBackend::Calendar);
        let times = [1e-6, 3.0, 4096.0, 2.5e7, 9.9e11, 0.125, 6e4];
        for (i, &t) in times.iter().enumerate() {
            q.push(entry(t, i as u64));
        }
        let mut sorted = times;
        sorted.sort_unstable_by(f64::total_cmp);
        let popped: Vec<f64> = std::iter::from_fn(|| q.pop().map(|e| e.time)).collect();
        assert_eq!(popped, sorted);
    }

    /// Differential harness: feed the identical schedule of pushes and
    /// pops to a heap-backed and a calendar-backed queue and demand
    /// bit-identical pop sequences (the property every trace hash in the
    /// repo rests on). Exact-tie timestamps and recycled flow ids with
    /// bumped generations are injected deliberately.
    fn differential_schedule(seed: u64, steps: u32) {
        let mut oracle = EventList::with_backend(EventListBackend::Heap);
        let mut cal = EventList::with_backend(EventListBackend::Calendar);
        let mut auto = EventList::with_backend(EventListBackend::Auto);
        let mut x = seed | 1;
        let mut live = 0usize;
        for step in 0..steps {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x % 5 < 3 || live == 0 {
                // Coarse timestamp grid => plenty of exact ties; low flow
                // ids recycle across generations like engine slots do.
                let t = (x >> 8) % 64;
                let slot = (x >> 20) % 24;
                let generation = (x >> 40) % 4;
                let e = CompletionEntry {
                    time: t as f64 * 0.125,
                    flow: FlowId((generation << 32) | slot),
                    epoch: step % 7,
                };
                oracle.push(e);
                cal.push(e);
                auto.push(e);
                live += 1;
            } else {
                let a = oracle.pop().expect("live entries");
                let b = cal.pop().expect("live entries");
                let c = auto.pop().expect("live entries");
                assert_eq!(a, b, "calendar diverged from heap at step {step} (seed {seed:#x})");
                assert_eq!(a, c, "auto diverged from heap at step {step} (seed {seed:#x})");
                live -= 1;
            }
        }
        loop {
            let (a, b, c) = (oracle.pop(), cal.pop(), auto.pop());
            assert_eq!(a, b);
            assert_eq!(a, c);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn calendar_pops_bit_identical_to_heap() {
        for seed in [0x9e37_79b9u64, 0xdead_beef, 0x5_ca1e, 0x0bad_cafe, 1, 0xffff_ffff] {
            differential_schedule(seed, 4000);
        }
    }

    mod oracle {
        use super::*;
        use proptest::prelude::*;

        /// One schedule step: `Some` pushes an entry built from a coarse
        /// time grid (deliberately tie-rich), a small slot pool recycled
        /// across generations (like engine flow slots), and an epoch
        /// stamp; `None` pops from every backend and compares.
        fn schedule() -> impl Strategy<Value = Vec<Option<(u32, u32, u32, u32)>>> {
            proptest::collection::vec(
                proptest::option::of((0u32..96, 0u32..16, 0u32..4, 0u32..8)),
                1..400,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// The heap is the oracle: calendar and auto must reproduce
            /// its pop sequence bit-for-bit under any interleaving of
            /// pushes and pops, exact-tie timestamps included.
            #[test]
            fn backends_pop_bit_identically(steps in schedule()) {
                let mut heap = EventList::with_backend(EventListBackend::Heap);
                let mut cal = EventList::with_backend(EventListBackend::Calendar);
                let mut auto = EventList::with_backend(EventListBackend::Auto);
                for (i, step) in steps.iter().enumerate() {
                    match *step {
                        Some((grid, slot, generation, epoch)) => {
                            let e = CompletionEntry {
                                time: f64::from(grid) * 0.0625,
                                flow: FlowId((u64::from(generation) << 32) | u64::from(slot)),
                                epoch,
                            };
                            heap.push(e);
                            cal.push(e);
                            auto.push(e);
                        }
                        None => {
                            let a = heap.pop();
                            prop_assert_eq!(a, cal.pop(), "calendar diverged at step {}", i);
                            prop_assert_eq!(a, auto.pop(), "auto diverged at step {}", i);
                        }
                    }
                }
                loop {
                    let a = heap.pop();
                    prop_assert_eq!(a, cal.pop(), "calendar diverged in the drain");
                    prop_assert_eq!(a, auto.pop(), "auto diverged in the drain");
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
    }
}
