//! The bandwidth-model seam: a first-class trait behind which the engine's
//! rate-assignment machinery lives.
//!
//! The engine's incremental max–min solver ([`crate::sharing`]) is one
//! *implementation* of a bandwidth model, not the model itself. This module
//! defines the [`BandwidthModel`] trait — the vocabulary a model needs to
//! plug into the engine's dirty-mark / settle / swap machinery — plus the
//! default [`MaxMinModel`] implementation, whose hooks are all identity
//! no-ops so the engine's behaviour (and every trace) is bit-identical to
//! the pre-seam engine.
//!
//! ## The trait contract
//!
//! A model participates in the engine's lifecycle at five points:
//!
//! 1. **Admission** ([`BandwidthModel::extra_latency`],
//!    [`BandwidthModel::on_start`]): a flow carrying a WAN annotation
//!    ([`crate::WanSpec`]) may be given extra start latency (propagation
//!    delay) and registered with the model's per-flow state.
//! 2. **Rate capping** ([`BandwidthModel::effective_cap`]): every place the
//!    solver reads a flow's `rate_cap` goes through the model, which may
//!    tighten the cap dynamically (a congestion window divided by the
//!    current RTT). The max–min progressive filling then runs *under* those
//!    caps, so a dynamic model reuses the entire component-scoped solver
//!    spine unchanged.
//! 3. **Dirty-mark vocabulary** ([`BandwidthModel::is_dynamic`]): flows
//!    whose caps are dynamic must not take the identical-signature swap
//!    fast path (an inherited rate would bake in a stale cap) and their
//!    completions must mark components *strongly* (removing a window
//!    changes the queue occupancy other flows see). The engine asks the
//!    model per flow; the answer is `false` for every flow of a static
//!    model, preserving all fast paths.
//! 4. **Settle hooks** ([`BandwidthModel::wants_window_update`],
//!    [`BandwidthModel::update_windows`]): before a settle pass the model
//!    may evolve its internal state (AIMD window updates) and report which
//!    flows' caps changed; the engine marks those flows' routes dirty so
//!    the very same settle re-solves them.
//! 5. **Teardown** ([`BandwidthModel::on_end`], [`BandwidthModel::reset`]):
//!    completions/cancellations deregister per-flow state; `reset` clears
//!    everything while keeping allocations (mirroring [`crate::Engine::reset`]).
//!
//! Counters ([`BandwidthModel::counters`]) are merged into [`crate::Stats`]
//! at read time, exactly like the event-queue counters.

use crate::ids::ResourceId;
pub use crate::wan::FlowLevelParams;
use crate::wan::FlowLevelWan;

/// Per-flow WAN annotation carried by a [`crate::FlowSpec`]. Ignored by
/// static models ([`MaxMinModel`]); consumed by flow-level models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WanSpec {
    /// One-way propagation delay of this flow's WAN path, seconds.
    pub delay: f64,
    /// The bottleneck resource whose QDisc this flow queues at (must be on
    /// the flow's route).
    pub bottleneck: ResourceId,
}

/// Counters a bandwidth model accumulates; merged into [`crate::Stats`] at
/// read time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelCounters {
    /// WAN-annotated flows registered with the model.
    pub wan_flows: u64,
    /// Multiplicative window decreases applied (congestion signals).
    pub wan_window_cuts: u64,
    /// Additive window increases applied.
    pub wan_window_bumps: u64,
}

/// The seam between the engine and its rate-assignment physics.
///
/// All hooks default to the static no-op behaviour, so a minimal model is
/// `struct M; impl BandwidthModel for M { fn name(&self) -> &'static str
/// { "m" } }` — exactly [`MaxMinModel`].
pub trait BandwidthModel {
    /// Short stable name (CLI columns, logs).
    fn name(&self) -> &'static str;

    /// Extra start latency for a flow with the given WAN propagation
    /// delay. Static models add none.
    #[inline]
    fn extra_latency(&self, delay: f64) -> f64 {
        let _ = delay;
        0.0
    }

    /// Register a WAN-annotated flow occupying flow-table slot `slot`.
    /// `bottleneck_cap` is the base capacity of its bottleneck resource.
    #[inline]
    fn on_start(&mut self, slot: usize, wan: WanSpec, bottleneck_cap: f64, now: f64) {
        let _ = (slot, wan, bottleneck_cap, now);
    }

    /// Deregister a flow (completion or cancellation). Must be a no-op for
    /// slots that were never registered.
    #[inline]
    fn on_end(&mut self, slot: usize) {
        let _ = slot;
    }

    /// Whether the flow in `slot` has a *dynamic* effective cap. Dynamic
    /// flows are excluded from the identical-signature swap fast path and
    /// their completions mark strongly instead of weakly.
    #[inline]
    fn is_dynamic(&self, slot: usize) -> bool {
        let _ = slot;
        false
    }

    /// The flow's effective rate cap given its static cap `base`
    /// (`f64::INFINITY` = uncapped). Must return `base` exactly for flows
    /// the model does not constrain — the degeneracy guarantee rides on
    /// this being the identical float.
    #[inline]
    fn effective_cap(&self, slot: usize, base: f64) -> f64 {
        let _ = slot;
        base
    }

    /// Whether the model wants [`update_windows`](Self::update_windows)
    /// before the next settle at time `now`.
    #[inline]
    fn wants_window_update(&self, now: f64) -> bool {
        let _ = now;
        false
    }

    /// Evolve internal state to `now` (AIMD steps); push the slots whose
    /// effective caps changed onto `changed` so the engine can dirty-mark
    /// their routes.
    #[inline]
    fn update_windows(&mut self, now: f64, changed: &mut Vec<u32>) {
        let _ = (now, changed);
    }

    /// Accumulated model counters.
    #[inline]
    fn counters(&self) -> ModelCounters {
        ModelCounters::default()
    }

    /// Clear all per-run state, keeping allocations.
    #[inline]
    fn reset(&mut self) {}
}

/// The default static model: max–min fair sharing with no WAN physics.
/// Every hook is the identity no-op, so the engine behaves — bit for bit —
/// exactly as it did before the seam existed.
#[derive(Debug, Default, Clone, Copy)]
pub struct MaxMinModel;

impl BandwidthModel for MaxMinModel {
    fn name(&self) -> &'static str {
        "maxmin"
    }
}

/// Selection of a bandwidth model, engine-facing (see
/// [`crate::Engine::set_bandwidth_model`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum BandwidthModelConfig {
    /// The default incremental component-scoped max–min solver.
    #[default]
    MaxMin,
    /// The flow-level WAN backend: per-flow propagation delay, windowed
    /// AIMD congestion control, FIFO QDisc queueing feedback.
    FlowLevel(FlowLevelParams),
}

/// Statically-dispatched model holder. Hot-path hooks compile to direct
/// calls (and the `MaxMin` arms inline to nothing), so the seam costs the
/// default model no indirection.
// One value per engine, so the variant size gap is irrelevant — boxing
// would instead put a pointer deref on every solver-hot-path hook.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum ModelDispatch {
    MaxMin(MaxMinModel),
    FlowLevel(FlowLevelWan),
}

impl Default for ModelDispatch {
    fn default() -> Self {
        ModelDispatch::MaxMin(MaxMinModel)
    }
}

impl ModelDispatch {
    pub fn from_config(cfg: BandwidthModelConfig) -> Self {
        match cfg {
            BandwidthModelConfig::MaxMin => ModelDispatch::MaxMin(MaxMinModel),
            BandwidthModelConfig::FlowLevel(p) => ModelDispatch::FlowLevel(FlowLevelWan::new(p)),
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $m:ident => $body:expr) => {
        match $self {
            ModelDispatch::MaxMin($m) => $body,
            ModelDispatch::FlowLevel($m) => $body,
        }
    };
}

impl BandwidthModel for ModelDispatch {
    #[inline]
    fn name(&self) -> &'static str {
        dispatch!(self, m => m.name())
    }
    #[inline]
    fn extra_latency(&self, delay: f64) -> f64 {
        dispatch!(self, m => m.extra_latency(delay))
    }
    #[inline]
    fn on_start(&mut self, slot: usize, wan: WanSpec, bottleneck_cap: f64, now: f64) {
        dispatch!(self, m => m.on_start(slot, wan, bottleneck_cap, now))
    }
    #[inline]
    fn on_end(&mut self, slot: usize) {
        dispatch!(self, m => m.on_end(slot))
    }
    #[inline]
    fn is_dynamic(&self, slot: usize) -> bool {
        dispatch!(self, m => m.is_dynamic(slot))
    }
    #[inline]
    fn effective_cap(&self, slot: usize, base: f64) -> f64 {
        dispatch!(self, m => m.effective_cap(slot, base))
    }
    #[inline]
    fn wants_window_update(&self, now: f64) -> bool {
        dispatch!(self, m => m.wants_window_update(now))
    }
    #[inline]
    fn update_windows(&mut self, now: f64, changed: &mut Vec<u32>) {
        dispatch!(self, m => m.update_windows(now, changed))
    }
    #[inline]
    fn counters(&self) -> ModelCounters {
        dispatch!(self, m => m.counters())
    }
    #[inline]
    fn reset(&mut self) {
        dispatch!(self, m => m.reset())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxmin_hooks_are_identity() {
        let mut m = MaxMinModel;
        assert_eq!(m.name(), "maxmin");
        assert_eq!(m.extra_latency(1.5), 0.0);
        assert_eq!(m.effective_cap(3, 42.0), 42.0);
        assert_eq!(m.effective_cap(3, f64::INFINITY), f64::INFINITY);
        assert!(!m.is_dynamic(0));
        assert!(!m.wants_window_update(10.0));
        let mut changed = Vec::new();
        m.update_windows(10.0, &mut changed);
        assert!(changed.is_empty());
        assert_eq!(m.counters(), ModelCounters::default());
    }

    #[test]
    fn default_config_is_maxmin() {
        assert_eq!(BandwidthModelConfig::default(), BandwidthModelConfig::MaxMin);
        let d = ModelDispatch::default();
        assert_eq!(d.name(), "maxmin");
    }
}
