//! Typed identifiers for kernel objects.
//!
//! All ids are small integer newtypes so domain code cannot accidentally mix
//! a flow id with a resource id. [`Tag`] is an opaque 64-bit payload the
//! caller attaches to flows and timers to route completions back to its own
//! state machines (simulators typically bit-pack job/file/block indices into
//! it).

/// Identifier of a resource registered with [`crate::Engine::add_resource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// Index into the engine's resource table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a flow started with [`crate::Engine::start_flow`].
///
/// Packs a slot index (low 32 bits) and a generation stamp (high 32
/// bits): the engine recycles the slots of finished flows so the hot flow
/// table stays cache-resident, and the generation lets queries with ids
/// of recycled flows report them as no longer live instead of aliasing
/// the slot's new occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub(crate) u64);

impl FlowId {
    /// Index into the engine's flow slab.
    #[inline]
    pub fn index(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    /// Generation stamp of the slot at the time this id was issued.
    #[inline]
    pub(crate) fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Compose an id from a slot and its current generation.
    #[inline]
    pub(crate) fn compose(slot: u32, generation: u32) -> Self {
        FlowId((u64::from(generation) << 32) | u64::from(slot))
    }
}

/// Identifier of a timer set with [`crate::Engine::set_timer`].
///
/// Like [`FlowId`], packs a slot index (low 32 bits) and a generation
/// stamp (high 32 bits): the timer queue recycles the slots of fired and
/// cancelled timers, and the generation keeps stale ids from cancelling a
/// slot's new occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub(crate) u64);

impl TimerId {
    /// Slot in the timer queue's generation array.
    #[inline]
    pub(crate) fn slot(self) -> u32 {
        (self.0 & 0xFFFF_FFFF) as u32
    }

    /// Generation stamp of the slot at the time this id was issued.
    #[inline]
    pub(crate) fn timer_gen(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Compose an id from a slot and its current generation.
    #[inline]
    pub(crate) fn compose(slot: u32, generation: u32) -> Self {
        TimerId((u64::from(generation) << 32) | u64::from(slot))
    }
}

/// Opaque user payload carried by flows and timers and handed back in
/// [`crate::Event`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Tag(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let a = ResourceId(1);
        let b = ResourceId(2);
        assert!(a < b);
        let set: HashSet<_> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn tag_roundtrips_payload() {
        let t = Tag(0xdead_beef_0042);
        assert_eq!(t.0, 0xdead_beef_0042);
    }
}
