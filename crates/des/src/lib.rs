//! # simcal-des — fluid discrete-event simulation kernel
//!
//! A small, fast discrete-event simulation kernel in the style of SimGrid's
//! validated *flow-level* ("fluid") models. Activities are **flows**: each
//! flow has a demand (bytes or flops) and a **route** — the set of resources
//! it uses simultaneously (e.g. a network transfer crosses a storage service,
//! a WAN link and a node NIC). At any instant, flow rates are the **max–min
//! fair** allocation over all resources, computed by progressive filling
//! (see [`sharing`]). Simulated time advances from one flow completion or
//! timer to the next.
//!
//! The kernel is deliberately callback-free: the caller drives the loop and
//! owns all domain state, so borrow-checking stays trivial:
//!
//! ```
//! use simcal_des::{Engine, Event, FlowSpec, ResourceSpec, Tag};
//!
//! let mut engine = Engine::new();
//! let link = engine.add_resource(ResourceSpec::constant(125e6)); // 1 Gbps
//! engine.start_flow(FlowSpec::new(125e6, &[link], Tag(1)));
//! engine.start_flow(FlowSpec::new(125e6, &[link], Tag(2)));
//!
//! // Two equal flows share the link: both complete at t = 2 s.
//! while let Some(ev) = engine.next() {
//!     if let Event::FlowCompleted { tag, .. } = ev {
//!         assert!((engine.now() - 2.0).abs() < 1e-9);
//!         let _ = tag;
//!     }
//! }
//! ```
//!
//! Features used by the simulators built on top:
//! * [`CapacityModel::Degrading`] — effective capacity shrinks with the
//!   number of concurrent flows (HDD seek contention in the ground truth);
//! * per-flow rate caps (per-connection limits);
//! * per-flow latencies (the flow holds no bandwidth until the latency
//!   elapses — network round-trip or disk seek setup);
//! * engine statistics ([`Stats`]) counting events and rate recomputations,
//!   used to verify the O(s/B + s/b) event-count scaling of the paper's
//!   speed/accuracy trade-off (Table VI).

mod engine;
mod eventlist;
mod flow;
mod ids;
mod model;
pub mod partition;
mod resource;
mod route;
mod sharing;
mod stats;
mod timer;
mod wan;

pub use engine::{Engine, Event};
pub use eventlist::EventListBackend;
pub use flow::{FlowSpec, FlowStatus};
pub use ids::{FlowId, ResourceId, Tag, TimerId};
pub use model::{BandwidthModel, BandwidthModelConfig, MaxMinModel, ModelCounters, WanSpec};
pub use partition::{run_parallel, run_sequential, Envelope, Partition, SyncStats};
pub use resource::{CapacityModel, ResourceSpec};
pub use sharing::{solve_max_min, FlowInput, ResourceInput, SolveScratch, MAX_RATE};
pub use stats::Stats;
pub use wan::{FlowLevelParams, FlowLevelWan};

/// Relative numerical tolerance used when deciding a flow's demand is done.
pub const REL_EPS: f64 = 1e-9;

/// Absolute numerical tolerance (in demand units) for flow completion.
pub const ABS_EPS: f64 = 1e-6;
