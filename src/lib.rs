//! # simcal — automated calibration of PDC simulators
//!
//! A from-scratch Rust reproduction of *"Automated Calibration of Parallel
//! and Distributed Computing Simulators: A Case Study"* (McDonald, Horzela,
//! Suter, Casanova — 2024, arXiv:2403.13918): a fluid discrete-event
//! simulation kernel, a WRENCH-like simulator of HEP data-processing
//! workloads on cached multi-site platforms, a synthetic ground-truth
//! emulator standing in for the paper's WLCG traces, and a generic
//! black-box calibration framework with the paper's algorithms (grid
//! search, random search, gradient descent) plus extensions (simulated
//! annealing, Nelder–Mead, coordinate descent, Bayesian optimization).
//!
//! This facade crate re-exports the whole workspace. Start with
//! [`study::CaseStudy`] and the `examples/` directory:
//!
//! ```no_run
//! use std::sync::Arc;
//! use simcal::calib::{calibrate, Budget, RandomSearch};
//! use simcal::platform::PlatformKind;
//! use simcal::storage::XRootDConfig;
//! use simcal::study::{param_space, CaseObjective, CaseStudy};
//!
//! // 1. Ground truth (stands in for real-world traces).
//! let case = Arc::new(CaseStudy::generate_full());
//!
//! // 2. The objective: MRE over 33 metrics (3 nodes x 11 ICD values).
//! let objective =
//!     CaseObjective::full(&case, PlatformKind::Fcsn, XRootDConfig::paper_1s());
//!
//! // 3. Calibrate.
//! let result = calibrate(
//!     &mut RandomSearch::new(42),
//!     &objective,
//!     &param_space(),
//!     Budget::Evaluations(500),
//! );
//! println!("best MRE: {:.2}%", result.best_error);
//! ```

pub use simcal_calib as calib;
pub use simcal_des as des;
pub use simcal_groundtruth as groundtruth;
pub use simcal_platform as platform;
pub use simcal_sim as sim;
pub use simcal_storage as storage;
pub use simcal_study as study;
pub use simcal_survey as survey;
pub use simcal_units as units;
pub use simcal_workload as workload;

/// Re-export of the calibration entry points at the crate root for
/// convenience.
pub use simcal_calib::algorithms::{calibrate, calibrate_with_workers};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let _space = crate::study::param_space();
        let _platforms = crate::platform::all_platforms();
        let _survey = crate::survey::table_i();
        assert_eq!(_platforms.len(), 4);
    }
}
