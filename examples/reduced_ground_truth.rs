//! Calibrating from less ground-truth data (a scaled-down Table V).
//!
//! Compares calibrations computed from single ICD values, a diverse
//! 3-element subset, and the full 11-value grid — all scored on the full
//! grid. Collecting ground truth is "labor-, time-, and energy-consuming",
//! so knowing that a small diverse subset suffices matters in practice.
//!
//! ```sh
//! cargo run --release --example reduced_ground_truth
//! ```

use std::sync::Arc;

use simcal::calib::{calibrate, Budget, GradientDescent, Objective};
use simcal::platform::PlatformKind;
use simcal::storage::XRootDConfig;
use simcal::study::{param_space, CaseObjective, CaseStudy};

fn main() {
    println!("generating ground truth...");
    let case = Arc::new(CaseStudy::generate_full());
    let kind = PlatformKind::Fcsn;
    let granularity = XRootDConfig::paper_1s();
    let space = param_space();
    let scorer = CaseObjective::full(&case, kind, granularity);

    let subsets: Vec<(&str, Vec<f64>)> = vec![
        ("{0.0} (extreme)", vec![0.0]),
        ("{1.0} (extreme)", vec![1.0]),
        ("{0.5}", vec![0.5]),
        ("{0.3, 0.7}", vec![0.3, 0.7]),
        ("{0.3, 0.5, 1.0}", vec![0.3, 0.5, 1.0]),
        ("all 11 values", (0..=10).map(|i| i as f64 / 10.0).collect()),
    ];

    println!("\n{:<20} {:>12} {:>14}", "calibration ICDs", "evals", "full-grid MRE");
    for (label, icds) in subsets {
        let objective = CaseObjective::new(&case, kind, &icds, granularity);
        let result = calibrate(
            &mut GradientDescent::fixed(42),
            &objective,
            &space,
            // Time-based budget: fewer ICDs -> cheaper evaluations -> more
            // exploration, the paper's mechanism.
            Budget::SimulatedCost(8.0),
        );
        let full_mre = scorer.evaluate(&result.best_values);
        println!("{label:<20} {:>12} {full_mre:>13.2}%", result.evaluations);
    }
    println!(
        "\nDiverse small subsets rival the full grid; single extreme ICD values \
         generalize poorly — the paper's Table V."
    );
}
