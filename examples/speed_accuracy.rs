//! The speed/accuracy trade-off (a scaled-down Table VI).
//!
//! Calibrates the FCSN platform at all four paper granularity settings
//! under the same simulated-cost budget and prints MRE, evaluation counts,
//! and measured per-simulation times — demonstrating the paper's key
//! observation that the *fastest* simulator calibrates best within a fixed
//! time budget.
//!
//! ```sh
//! cargo run --release --example speed_accuracy
//! ```

use std::sync::Arc;

use simcal::calib::{calibrate, Budget, RandomSearch};
use simcal::platform::PlatformKind;
use simcal::storage::XRootDConfig;
use simcal::study::{param_space, CaseObjective, CaseStudy};

fn main() {
    println!("generating ground truth...");
    let case = Arc::new(CaseStudy::generate_full());
    let space = param_space();
    let budget_secs = 20.0;

    println!("\n{:<16} {:>12} {:>8} {:>10}", "B / b", "sim time", "evals", "MRE");
    for granularity in XRootDConfig::table_vi() {
        let objective = CaseObjective::full(&case, PlatformKind::Fcsn, granularity);
        let result = calibrate(
            &mut RandomSearch::new(42),
            &objective,
            &space,
            Budget::SimulatedCost(budget_secs),
        );
        let total_cost = result.curve.last().map(|&(c, _)| c).unwrap_or(0.0);
        let sims = result.evaluations as f64 * 11.0;
        println!(
            "{:<16} {:>10.1}ms {:>8} {:>9.2}%",
            format!("{:.0e}/{:.0e}", granularity.block_size, granularity.buffer_size),
            1e3 * total_cost / sims.max(1.0),
            result.evaluations,
            result.best_error
        );
    }
    println!(
        "\nSame budget ({budget_secs} s of simulation) at every granularity: the \
         coarser/faster settings afford more evaluations and find better \
         calibrations — the paper's Table VI."
    );
}
