//! Calibrating a simulator of a *custom* platform and workload — the
//! workflow a user with their own system would follow:
//!
//! 1. describe the platform topology and the workload;
//! 2. obtain ground-truth executions (here: the fine-grained emulator);
//! 3. define the parameter space and accuracy metric;
//! 4. run an automated calibration and validate.
//!
//! ```sh
//! cargo run --release --example calibrate_custom
//! ```

use std::sync::Arc;

use simcal::calib::{calibrate, Budget, NelderMead, Objective, ParamSpace, ParamSpec};
use simcal::groundtruth::cache_plan_for;
use simcal::platform::{HardwareParams, PlatformBuilder};
use simcal::sim::{simulate, NoiseConfig, SimConfig};
use simcal::storage::XRootDConfig;
use simcal::units;
use simcal::workload::{Distribution, Workload, WorkloadSpec};

/// A user-defined objective: relative makespan difference (the "simplest
/// simulation accuracy metric" of the paper's problem statement), averaged
/// over three cache ratios.
struct MakespanObjective {
    platform: simcal::platform::PlatformSpec,
    workload: Arc<Workload>,
    truth_makespans: Vec<(f64, f64)>,
    granularity: XRootDConfig,
}

impl Objective for MakespanObjective {
    fn evaluate(&self, values: &[f64]) -> f64 {
        let mut hw = HardwareParams::defaults();
        hw.core_speed = values[0];
        hw.disk_bw = values[1];
        hw.wan_bw = values[2];
        let config = SimConfig::new(hw, self.granularity);
        let mut total = 0.0;
        for &(icd, truth) in &self.truth_makespans {
            let plan = cache_plan_for(&self.workload, icd);
            let trace = simulate(&self.platform, &self.workload, &plan, &config);
            total += (trace.makespan() - truth).abs() / truth;
        }
        100.0 * total / self.truth_makespans.len() as f64
    }
}

fn main() {
    // 1. A custom edge cluster: 4 x 16-core nodes, no page cache, 1 Gbps.
    let platform = PlatformBuilder::new("edge-cluster")
        .nodes("worker", 4, 16)
        .page_cache(false)
        .wan_gbps(1.0)
        .build();

    // A workload with stochastic volumes, as the paper's simulator accepts.
    let workload = Arc::new(
        WorkloadSpec {
            n_jobs: 64,
            files_per_job: 6,
            file_size: Distribution::Normal { mean: 80e6, std_dev: 10e6, floor: 1e6 },
            flops_per_byte: Distribution::Constant(8.0),
            output_bytes: Distribution::Exponential { rate: 1.0 / 8e6 },
            arrival: simcal::workload::ArrivalProcess::Immediate,
        }
        .generate(7),
    );

    // 2. "Real" executions: a hidden-parameter emulator run.
    let mut true_hw = HardwareParams::defaults();
    true_hw.core_speed = units::gflops(2.4);
    true_hw.disk_bw = units::mbytes_per_sec(55.0);
    true_hw.wan_bw = units::mbps(870.0); // effective < nominal 1 Gbps
    true_hw.disk_contention_alpha = 0.2;
    let mut true_cfg = SimConfig::new(true_hw, XRootDConfig::ground_truth());
    true_cfg.cache_write_through = true;
    true_cfg.noise = NoiseConfig { compute_factors: vec![], read_jitter_sigma: 0.05, seed: 99 };
    let icds = [0.0, 0.5, 1.0];
    let truth_makespans: Vec<(f64, f64)> = icds
        .iter()
        .map(|&icd| {
            let plan = cache_plan_for(&workload, icd);
            let trace = simulate(&platform, &workload, &plan, &true_cfg);
            (icd, trace.makespan())
        })
        .collect();
    println!("ground-truth makespans:");
    for (icd, m) in &truth_makespans {
        println!("  ICD {icd:.1}: {}", units::format_duration(*m));
    }

    // 3. Parameter space: three parameters with user-chosen ranges.
    let space = ParamSpace::new(vec![
        ParamSpec::new("core_speed", 1e8, 1e11),
        ParamSpec::new("disk_bw", 1e6, 1e9),
        ParamSpec::new("wan_bw", 1e6, 1e10),
    ]);

    let objective = MakespanObjective {
        platform,
        workload,
        truth_makespans,
        granularity: XRootDConfig::new(20e6, 4e6),
    };

    // 4. Calibrate with Nelder-Mead (any `Calibrator` works here).
    let result = calibrate(&mut NelderMead::new(3), &objective, &space, Budget::Evaluations(250));
    println!(
        "\n{}: mean relative makespan error {:.2}% after {} evaluations",
        result.algorithm, result.best_error, result.evaluations
    );
    println!("  core_speed = {}", units::format_flops_rate(result.best_values[0]));
    println!("  disk_bw    = {}", units::format_rate(result.best_values[1]));
    println!("  wan_bw     = {}", units::format_rate(result.best_values[2]));
    println!(
        "  (true:      {}, {}, {})",
        units::format_flops_rate(true_hw.core_speed),
        units::format_rate(true_hw.disk_bw),
        units::format_rate(true_hw.wan_bw)
    );
}
