//! Quickstart: calibrate the simulator for one platform and inspect the
//! result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use simcal::calib::{calibrate, Budget, GradientDescent};
use simcal::platform::PlatformKind;
use simcal::storage::XRootDConfig;
use simcal::study::{param_space, CaseObjective, CaseStudy, HumanCalibration, PARAM_NAMES};
use simcal::units;

fn main() {
    // Ground truth: the synthetic stand-in for real-world executions
    // (4 platforms x 11 ICD values x per-node mean job times).
    println!("generating ground truth (48 jobs x 20 files x 427 MB)...");
    let case = Arc::new(CaseStudy::generate_full());

    let kind = PlatformKind::Fcsn;
    let granularity = XRootDConfig::paper_1s();
    let space = param_space();

    // The domain scientist's calibration, for reference.
    let human = HumanCalibration::perform(&case);
    let objective = CaseObjective::full(&case, kind, granularity);
    let human_mre = objective.score_hardware(&human.hardware(kind));
    println!("HUMAN calibration on {}: MRE {human_mre:.2}%", kind.label());

    // Automated calibration: gradient descent, 400 evaluations.
    let mut algo = GradientDescent::fixed(42);
    let result = calibrate(&mut algo, &objective, &space, Budget::Evaluations(400));

    println!(
        "{} calibration on {}: MRE {:.2}% after {} evaluations",
        result.algorithm,
        kind.label(),
        result.best_error,
        result.evaluations
    );
    for (name, value) in PARAM_NAMES.iter().zip(&result.best_values) {
        let pretty = match *name {
            "core_speed" => units::format_flops_rate(*value),
            _ => units::format_rate(*value),
        };
        println!("  {name:<14} = {pretty}");
    }
    println!("\nautomated vs human: {:.1}x better", human_mre / result.best_error.max(1e-9));
}
