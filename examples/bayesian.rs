//! Bayesian optimization vs the paper's simple algorithms — the paper's
//! future-work direction, implemented.
//!
//! "Bayesian Optimization is an attractive proposition as it is highly
//! effective for optimizing black-box functions that are relatively
//! expensive to evaluate" (§V). This example compares sample efficiency at
//! a small evaluation budget on the FCSN calibration problem, alongside the
//! other extension algorithms.
//!
//! ```sh
//! cargo run --release --example bayesian
//! ```

use std::sync::Arc;

use simcal::calib::{
    calibrate, BayesianOpt, Budget, Calibrator, CoordinateDescent, GradientDescent, NelderMead,
    RandomSearch, SimulatedAnnealing,
};
use simcal::platform::PlatformKind;
use simcal::storage::XRootDConfig;
use simcal::study::{param_space, CaseObjective, CaseStudy};

fn main() {
    println!("generating ground truth...");
    let case = Arc::new(CaseStudy::generate_full());
    let space = param_space();
    let budget = Budget::Evaluations(120);

    let algos: Vec<Box<dyn Calibrator>> = vec![
        Box::new(RandomSearch::new(42)),
        Box::new(GradientDescent::fixed(42)),
        Box::new(SimulatedAnnealing::new(42)),
        Box::new(NelderMead::new(42)),
        Box::new(CoordinateDescent::new(42)),
        Box::new(BayesianOpt::new(42)),
    ];

    println!("\nFCSN calibration, 120 evaluations each:");
    println!("{:<14} {:>10} {:>8}", "algorithm", "MRE", "evals");
    let mut results: Vec<(String, f64)> = Vec::new();
    for mut algo in algos {
        let objective = CaseObjective::full(&case, PlatformKind::Fcsn, XRootDConfig::paper_1s());
        let r = calibrate(algo.as_mut(), &objective, &space, budget);
        println!("{:<14} {:>9.2}% {:>8}", r.algorithm, r.best_error, r.evaluations);
        results.push((r.algorithm, r.best_error));
    }

    let best =
        results.iter().min_by(|a, b| a.1.total_cmp(&b.1)).expect("at least one algorithm ran");
    println!(
        "\nBest at this budget: {} ({:.2}%). At tight budgets, model-based \
         and structured searches typically beat uniform sampling — the \
         motivation for the paper's future-work direction.",
        best.0, best.1
    );
}
