//! Property tests of the scenario subsystem: registry determinism, sweep
//! sharding invariance, and the scenario-driven ground-truth path.
//!
//! The load-bearing guarantees:
//!
//! 1. scenario generation is deterministic per seed — two registries (or
//!    two materializations of one scenario) are bit-identical;
//! 2. a sweep's per-scenario results are bit-identical across worker
//!    counts (1, 2, 8) and shard sizes/orders — parallelism is pure
//!    mechanism, never observable in the results;
//! 3. the scenario-driven case-study generation reproduces the sequential
//!    per-platform ground-truth generator bit-for-bit.

use proptest::prelude::*;

use simcal::sim::{Scenario, ScenarioRegistry, SimSession};
use simcal::study::sweep::{SweepResult, SweepRunner};

fn reduced_grid() -> Vec<Scenario> {
    ScenarioRegistry::reduced().scenarios()
}

fn fingerprints(rs: &[SweepResult]) -> Vec<(String, Vec<u64>, u64, u64)> {
    rs.iter().map(SweepResult::fingerprint).collect()
}

#[test]
fn registry_has_at_least_twelve_valid_scenarios() {
    for reg in [ScenarioRegistry::builtin(), ScenarioRegistry::reduced()] {
        assert!(reg.len() >= 12, "registry too small: {}", reg.len());
        for e in reg.entries() {
            e.scenario.validate();
        }
        // Names are unique.
        let mut names: Vec<&str> = reg.entries().iter().map(|e| e.scenario.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len());
    }
}

#[test]
fn scenario_generation_is_deterministic_per_seed() {
    let a = ScenarioRegistry::builtin();
    let b = ScenarioRegistry::builtin();
    for (x, y) in a.entries().iter().zip(b.entries()) {
        assert_eq!(x.scenario, y.scenario, "registry regeneration must be bit-stable");
        // Materialization (workload sampling + cache placement) is too.
        let mx = x.scenario.materialize();
        let my = y.scenario.materialize();
        assert_eq!(mx.workload.jobs, my.workload.jobs);
        assert_eq!(mx.plan, my.plan);
    }
    // And a changed workload seed changes the sampled workload for any
    // non-constant spec.
    let sc = a.get("straggler-compute").expect("registry scenario");
    if let simcal::sim::WorkloadSource::Spec { spec, seed } = &sc.workload {
        let w1 = spec.generate(*seed);
        let w2 = spec.generate(seed ^ 1);
        assert_ne!(w1.jobs, w2.jobs, "seed must drive workload sampling");
    } else {
        panic!("registry scenarios are spec-driven");
    }
}

#[test]
fn sweep_is_bit_identical_across_1_2_8_workers() {
    let grid = reduced_grid();
    let base = SweepRunner::new().with_workers(1).run(&grid);
    assert_eq!(base.len(), grid.len());
    for workers in [2, 8] {
        let par = SweepRunner::new().with_workers(workers).run(&grid);
        assert_eq!(fingerprints(&base), fingerprints(&par), "results differ at {workers} workers");
    }
}

#[test]
fn sweep_matches_direct_session_runs() {
    // The sweep must compute exactly what a bare scenario run computes —
    // including the horizon scenarios, whose percentiles come from the
    // streaming P² report rather than the trace.
    let grid = reduced_grid();
    let swept = SweepRunner::new().with_workers(4).run(&grid);
    let mut session = SimSession::new();
    for (sc, r) in grid.iter().zip(&swept) {
        let report = sc.try_run_report(&mut session, 1).expect("scenario runs");
        let direct = SweepResult::from_report(&sc.name, &report);
        assert_eq!(direct.fingerprint(), r.fingerprint(), "scenario {}", sc.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sharding geometry and grid order are pure mechanism: any worker
    /// count, any shard size, and any rotation of the grid produce the
    /// same per-scenario results.
    #[test]
    fn sweep_invariant_under_sharding_and_order(
        workers in 1usize..=8,
        shard_size in 1usize..=6,
        rotation in 0usize..14,
    ) {
        let mut grid = reduced_grid();
        let base = SweepRunner::new().with_workers(1).run(&grid);
        let by_name: std::collections::HashMap<_, _> =
            base.iter().map(|r| (r.name.clone(), r.fingerprint())).collect();

        let rot = rotation % grid.len();
        grid.rotate_left(rot);
        let swept = SweepRunner::new()
            .with_workers(workers)
            .with_shard_size(shard_size)
            .run(&grid);
        prop_assert_eq!(swept.len(), grid.len());
        for (sc, r) in grid.iter().zip(&swept) {
            prop_assert_eq!(&r.name, &sc.name, "results stay index-aligned");
            prop_assert_eq!(&r.fingerprint(), &by_name[&sc.name]);
        }
    }
}

#[test]
fn scenario_driven_case_study_matches_sequential_generator() {
    // CaseStudy::generate_with sweeps the (platform, ICD) grid in
    // parallel; the sequential reference path generates one platform at a
    // time on a private session. The two must agree bit-for-bit.
    let case = simcal::study::CaseStudy::generate_reduced();
    let mut truth = simcal::groundtruth::TruthParams::case_study();
    truth.granularity = simcal::storage::XRootDConfig::new(8e6, 2e6);
    let workload = simcal::workload::scaled_cms_workload(30, 4, 40e6);
    let icds = simcal::storage::CachePlan::paper_icd_values();
    for kind in simcal::platform::PlatformKind::ALL {
        let seq = simcal::groundtruth::generate(kind, &workload, &truth, &icds);
        let par = case.gt(kind);
        assert_eq!(seq.to_csv(), par.to_csv(), "platform {}", kind.label());
        let a: Vec<u64> = seq.metric_vector().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = par.metric_vector().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "metric vectors must be bit-identical, platform {}", kind.label());
    }
}

#[test]
fn icd_grid_sweep_covers_every_point_deterministically() {
    let reg = ScenarioRegistry::reduced();
    let grid = reg.icd_grid(&[0.0, 0.5, 1.0]);
    assert_eq!(grid.len(), reg.len() * 3);
    let a = SweepRunner::new().with_workers(8).with_shard_size(3).run(&grid);
    let b = SweepRunner::new().with_workers(3).run(&grid);
    assert_eq!(fingerprints(&a), fingerprints(&b));
}
