//! Partitioned parallel DES properties over the real multi-site simulator.
//!
//! `crates/des/src/partition.rs` proves the conservative protocol on toy
//! relay topologies; these tests pin the same guarantees end-to-end
//! through the public scenario path:
//!
//! 1. **Shard invariance**: every multi-site registry scenario produces a
//!    bit-identical trace at 1 (the sequential oracle), 2, and 4 shards;
//! 2. **Lookahead safety**: the WAN-derived lookahead is exactly the
//!    narrowest link latency, strictly positive, and the parallel run
//!    really exercises the null-message machinery;
//! 3. **Deadlock freedom**: ring and star topologies complete at maximal
//!    sharding (one site per thread) — the blocked-wait protocol always
//!    wakes up;
//! 4. the same invariance holds on **randomized** star topologies,
//!    workloads, and shard counts (proptest).

use proptest::prelude::*;

use simcal::des::SyncStats;
use simcal::platform::{catalog, MultiSiteBuilder, PlatformKind};
use simcal::sim::{
    try_simulate_multisite_with_stats, CacheSpec, Scenario, ScenarioRegistry, SimConfig,
    SimSession, WorkloadSource,
};
use simcal::workload::{ArrivalProcess, Distribution, WorkloadSpec};

/// One job record, flattened to bit-exact comparable form.
type JobBits = (usize, usize, u32, u64, u64);

/// Job-trace fingerprint: everything the sweep's trace hash covers.
fn fingerprint(trace: &simcal::workload::ExecutionTrace) -> (Vec<JobBits>, usize, u64) {
    let jobs = trace
        .jobs
        .iter()
        .map(|j| (j.job, j.node, j.core, j.start.to_bits(), j.end.to_bits()))
        .collect();
    (jobs, trace.n_nodes, trace.engine_events)
}

#[test]
fn every_multisite_builtin_is_shard_invariant() {
    for reg in [ScenarioRegistry::builtin(), ScenarioRegistry::reduced()] {
        let scenarios: Vec<Scenario> = reg
            .entries()
            .iter()
            .filter(|e| e.scenario.multisite.is_some())
            .map(|e| e.scenario.clone())
            .collect();
        assert_eq!(scenarios.len(), 4, "the registry carries four multi-site scenarios");
        for sc in &scenarios {
            let oracle = fingerprint(&sc.run_sharded(&mut SimSession::new(), 1));
            for shards in [2usize, 4] {
                let trace = sc.run_sharded(&mut SimSession::new(), shards);
                assert_eq!(
                    fingerprint(&trace),
                    oracle,
                    "{}: {shards}-shard trace differs from the sequential oracle",
                    sc.name
                );
            }
        }
    }
}

/// Run one materialized multi-site scenario, returning trace + stats.
fn run_with_stats(sc: &Scenario, shards: usize) -> (simcal::workload::ExecutionTrace, SyncStats) {
    let ms = sc.multisite.as_ref().expect("multi-site scenario");
    let m = sc.materialize();
    try_simulate_multisite_with_stats(ms, &m.workload, &m.plan, &sc.config, shards)
        .expect("simulation failed")
}

#[test]
fn lookahead_is_the_narrowest_wan_latency_and_the_protocol_runs_inside_it() {
    for e in ScenarioRegistry::reduced().entries() {
        let Some(ms) = &e.scenario.multisite else { continue };
        let min_latency = ms.links.iter().map(|l| l.latency).fold(f64::INFINITY, f64::min);
        assert!(min_latency > 0.0, "{}: WAN latency must be positive", e.scenario.name);
        assert_eq!(
            ms.lookahead(),
            min_latency,
            "{}: lookahead must be the provable minimum WAN delay",
            e.scenario.name
        );

        let (trace, stats) = run_with_stats(&e.scenario, ms.site_count());
        assert_eq!(stats.lookahead, min_latency);
        assert_eq!(stats.partitions, ms.site_count());
        assert!(stats.shards > 1, "{}: the run must actually shard", e.scenario.name);
        // Staging crosses sites, so the conservative machinery must have
        // carried real traffic and real null messages.
        assert!(stats.data_messages > 0, "{}: no cross-shard traffic?", e.scenario.name);
        assert!(stats.horizon_announcements > 0, "{}: no null messages?", e.scenario.name);
        assert_eq!(
            fingerprint(&trace),
            fingerprint(&e.scenario.run_sharded(&mut SimSession::new(), 1))
        );
    }
}

#[test]
fn ring_and_star_topologies_complete_at_maximal_sharding() {
    // Deadlock freedom, end-to-end: every site on its own thread, cyclic
    // (ring) and hub-and-spoke (star) WAN graphs. A protocol deadlock
    // would hang this test rather than fail an assertion.
    for ms in [
        catalog::multisite_ring(PlatformKind::Fcsn, 4),
        catalog::multisite_ring(PlatformKind::Scsn, 3),
        catalog::multisite_star(PlatformKind::Fcfn, 4),
    ] {
        let sc = scenario_on(ms.clone(), 2 * ms.compute_sites().len(), 3, 0x5eed);
        let oracle = fingerprint(&sc.run_sharded(&mut SimSession::new(), 1));
        let trace = sc.run_sharded(&mut SimSession::new(), ms.site_count());
        assert_eq!(fingerprint(&trace), oracle, "{}: sharded run diverged", sc.name);
        assert_eq!(trace.jobs.len(), 2 * ms.compute_sites().len(), "every job completed");
    }
}

/// Wrap a topology and a small constant workload into a scenario.
fn scenario_on(
    ms: simcal::platform::MultiSiteSpec,
    n_jobs: usize,
    files_per_job: usize,
    seed: u64,
) -> Scenario {
    Scenario {
        name: format!("pdes-{}", ms.name),
        platform: ms.sites[ms.compute_sites()[0]].clone(),
        workload: WorkloadSource::Spec {
            spec: WorkloadSpec {
                n_jobs,
                files_per_job,
                file_size: Distribution::Constant(24e6),
                flops_per_byte: Distribution::Constant(6.0),
                output_bytes: Distribution::Constant(2e6),
                arrival: ArrivalProcess::Immediate,
            },
            seed,
        },
        cache: CacheSpec { icd: 0.5, seed: Some(seed) },
        config: SimConfig::default(),
        multisite: Some(ms),
        horizon: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized star topologies: site count, per-link latencies and
    /// bandwidths, workload shape, cache depth, and shard count are all
    /// drawn — the sharded trace always matches the sequential oracle.
    #[test]
    fn random_star_topologies_are_shard_invariant(
        k in 2usize..5,
        lat_millis in proptest::collection::vec(1u64..200, 4),
        bw_mbps in proptest::collection::vec(50u64..2000, 4),
        n_jobs in 1usize..12,
        files in 1usize..4,
        icd_milli in 0u64..1000,
        wseed in 0u64..u64::MAX,
        shards in 2usize..6,
    ) {
        let hub = catalog::storage_hub();
        let mut b = MultiSiteBuilder::new("prop-star").site(hub);
        for i in 0..k {
            let kind = PlatformKind::ALL[i % PlatformKind::ALL.len()];
            b = b.site(catalog::ms_compute_site(kind, i)).link(
                0,
                i + 1,
                bw_mbps[i % bw_mbps.len()] as f64 * 1e6 / 8.0,
                lat_millis[i % lat_millis.len()] as f64 / 1000.0,
            );
        }
        let ms = b.build();
        let mut sc = scenario_on(ms, n_jobs, files, wseed);
        sc.cache.icd = icd_milli as f64 / 1000.0;
        let oracle = fingerprint(&sc.run_sharded(&mut SimSession::new(), 1));
        let trace = sc.run_sharded(&mut SimSession::new(), shards);
        prop_assert_eq!(fingerprint(&trace), oracle);
    }
}
