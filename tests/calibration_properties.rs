//! Property-based tests of the calibration framework through the public
//! API: parameter-space transforms, history invariants, and budget
//! accounting.

use proptest::prelude::*;

use simcal::calib::{
    calibrate_with_workers, Budget, Calibrator, FnObjective, GridSearch, History, ParamSpace,
    ParamSpec, RandomSearch,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Log2 unit-cube transform round-trips for arbitrary positive ranges.
    #[test]
    fn space_round_trips(
        lo_exp in -10.0f64..20.0,
        width_exp in 0.1f64..30.0,
        u in 0.0f64..1.0,
    ) {
        let lo = lo_exp.exp2();
        let hi = (lo_exp + width_exp).exp2();
        let spec = ParamSpec::new("p", lo, hi);
        let v = spec.value_of(u);
        prop_assert!(v >= lo * (1.0 - 1e-9) && v <= hi * (1.0 + 1e-9));
        prop_assert!((spec.unit_of(v) - u).abs() < 1e-6);
    }

    /// The geometric-mean property of log sampling: the unit midpoint of
    /// [a, b] maps to sqrt(a*b).
    #[test]
    fn log_midpoint_is_geometric_mean(lo_exp in -5.0f64..10.0, width in 0.5f64..20.0) {
        let lo = lo_exp.exp2();
        let hi = (lo_exp + width).exp2();
        let spec = ParamSpec::new("p", lo, hi);
        let mid = spec.value_of(0.5);
        prop_assert!(((mid * mid) / (lo * hi) - 1.0).abs() < 1e-6);
    }

    /// Budget accounting: any algorithm on any evaluation budget uses
    /// exactly that many evaluations (when the search space is non-trivial).
    #[test]
    fn budgets_are_exact(evals in 1u64..60, seed in 0u64..1000) {
        let space = ParamSpace::paper(&["a", "b"]);
        let obj = FnObjective(|v: &[f64]| v[0].log2() + v[1].log2());
        let mut algo = RandomSearch::new(seed);
        let r = calibrate_with_workers(
            &mut algo, &obj, &space, Budget::Evaluations(evals), Some(1));
        prop_assert_eq!(r.evaluations, evals);
        prop_assert_eq!(r.curve.len() as u64, evals);
    }

    /// Convergence curves are non-increasing in error and non-decreasing
    /// in cost.
    #[test]
    fn curves_are_monotone(evals in 2u64..80, seed in 0u64..1000) {
        let space = ParamSpace::paper(&["a", "b", "c"]);
        let obj = FnObjective(|v: &[f64]| (v[0].log2() - 27.0).abs() * (v[1].log2() - 29.0).abs());
        let mut algo: Box<dyn Calibrator> = if seed % 2 == 0 {
            Box::new(RandomSearch::new(seed))
        } else {
            Box::new(GridSearch::new())
        };
        let r = calibrate_with_workers(
            algo.as_mut(), &obj, &space, Budget::Evaluations(evals), Some(1));
        for w in r.curve.windows(2) {
            prop_assert!(w[1].1 <= w[0].1 + 1e-12);
            prop_assert!(w[1].0 >= w[0].0 - 1e-12);
        }
        prop_assert!((r.curve.last().unwrap().1 - r.best_error).abs() < 1e-12);
    }

    /// History best() agrees with a linear scan.
    #[test]
    fn history_best_is_min(errors in proptest::collection::vec(0.0f64..1e6, 1..50)) {
        let h = History::new();
        for (i, &e) in errors.iter().enumerate() {
            h.push(i as f64, vec![e], e);
        }
        let best = h.best().unwrap();
        let min = errors.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(best.error, min);
    }
}

/// Grid refinement covers the cube increasingly densely: after enough
/// levels, every cell of a fixed partition contains an evaluated point.
#[test]
fn grid_coverage_becomes_dense() {
    use parking_lot::Mutex;
    let seen = Mutex::new(Vec::<Vec<f64>>::new());
    let obj = FnObjective(|v: &[f64]| {
        seen.lock().push(v.to_vec());
        0.0
    });
    let space = ParamSpace::paper(&["a", "b"]);
    let mut algo = GridSearch::new();
    calibrate_with_workers(&mut algo, &obj, &space, Budget::Evaluations(90), Some(1));
    // 90 evals cover levels 0..=2 (4 + 5 + 16 = 25 points) and most of
    // level 3; check the level-2 5x5 lattice in unit space is complete.
    let pts = seen.lock();
    let units: Vec<Vec<f64>> = pts.iter().map(|p| space.unit_of(p)).collect();
    for i in 0..=4 {
        for j in 0..=4 {
            let (x, y) = (i as f64 / 4.0, j as f64 / 4.0);
            assert!(
                units.iter().any(|u| (u[0] - x).abs() < 1e-6 && (u[1] - y).abs() < 1e-6),
                "lattice point ({x}, {y}) never evaluated"
            );
        }
    }
}
