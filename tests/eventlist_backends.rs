//! Event-list backend invariance over the whole scenario space.
//!
//! The event-list seam (`EventListBackend::{Heap, Calendar, Auto}`)
//! promises that the backing store is pure mechanism: pop order — and
//! therefore every simulated trace — is bit-identical whichever backend
//! runs the queues. `crates/des` proves this at the queue level with a
//! differential proptest oracle; these tests pin it end-to-end through
//! the public scenario path:
//!
//! 1. every registry scenario (both scales, run-to-completion and
//!    steady-state horizon, single- and multi-site) produces an
//!    identical sweep fingerprint — makespan, events, trace hash — under
//!    heap, calendar, and auto;
//! 2. horizon runs report bit-identical streaming percentiles across
//!    backends (the `HorizonReport` is a fold over the pop order, so
//!    any divergence would surface here first);
//! 3. the auto backend's heap→calendar migration really happens on a
//!    deep-queue scenario, and counters show the calendar did real work.

use simcal::des::EventListBackend;
use simcal::sim::{Scenario, ScenarioRegistry, SimSession};
use simcal::study::sweep::{SweepResult, SweepRunner};

const BACKENDS: [EventListBackend; 3] =
    [EventListBackend::Heap, EventListBackend::Calendar, EventListBackend::Auto];

/// The grid, re-pinned to one backend.
fn with_backend(grid: &[Scenario], backend: EventListBackend) -> Vec<Scenario> {
    let mut grid = grid.to_vec();
    for sc in &mut grid {
        sc.config.event_list = backend;
    }
    grid
}

fn fingerprints(rs: &[SweepResult]) -> Vec<(String, Vec<u64>, u64, u64)> {
    rs.iter().map(SweepResult::fingerprint).collect()
}

#[test]
fn every_reduced_scenario_is_backend_invariant() {
    let grid = ScenarioRegistry::reduced().scenarios();
    let runner = SweepRunner::new().with_workers(2);
    let oracle = fingerprints(&runner.run(&with_backend(&grid, EventListBackend::Heap)));
    for backend in [EventListBackend::Calendar, EventListBackend::Auto] {
        let results = runner.run(&with_backend(&grid, backend));
        assert_eq!(
            fingerprints(&results),
            oracle,
            "{backend:?}: sweep fingerprints diverged from the heap oracle"
        );
    }
}

#[test]
fn builtin_scenarios_are_backend_invariant_per_family() {
    // Full scale is too slow to sweep three times whole in a debug test;
    // one representative per family still walks every code path (paper
    // platforms, heterogeneous nodes, stragglers, deep caches, queued
    // arrivals, multi-site staging, steady horizons) at real size.
    let reg = ScenarioRegistry::builtin();
    let mut seen = std::collections::HashSet::new();
    let grid: Vec<Scenario> = reg
        .entries()
        .iter()
        .filter(|e| seen.insert(e.family))
        .map(|e| e.scenario.clone())
        .collect();
    assert!(grid.len() >= 7, "expected one scenario per family, got {}", grid.len());
    let runner = SweepRunner::new().with_workers(2);
    let oracle = fingerprints(&runner.run(&with_backend(&grid, EventListBackend::Heap)));
    for backend in [EventListBackend::Calendar, EventListBackend::Auto] {
        let results = runner.run(&with_backend(&grid, backend));
        assert_eq!(
            fingerprints(&results),
            oracle,
            "{backend:?}: sweep fingerprints diverged from the heap oracle"
        );
    }
}

#[test]
fn horizon_reports_are_bit_identical_across_backends() {
    // The streaming P² percentiles are a deterministic fold over
    // completion order, so backend invariance must extend beyond the
    // trace to every reported quantile bit.
    let steady: Vec<Scenario> = ScenarioRegistry::reduced()
        .matching("steady")
        .into_iter()
        .map(|e| e.scenario.clone())
        .collect();
    assert_eq!(steady.len(), 3, "the steady family has three variants");
    for sc in &steady {
        let mut reports = Vec::new();
        for backend in BACKENDS {
            let mut sc = sc.clone();
            sc.config.event_list = backend;
            let report = sc
                .try_run_report(&mut SimSession::new(), 1)
                .unwrap_or_else(|e| panic!("{}: {e}", sc.name));
            let h = report.horizon.unwrap_or_else(|| panic!("{}: no horizon report", sc.name));
            assert!(h.completed > 0, "{}: horizon run completed nothing", sc.name);
            reports.push((
                report.trace.jobs.len(),
                report.trace.engine_events,
                h.wait_p50.to_bits(),
                h.wait_p99.to_bits(),
                h.wait_p999.to_bits(),
                h.slowdown_p999.to_bits(),
                h.slo_attained.to_bits(),
                h.utilization.iter().map(|u| u.to_bits()).collect::<Vec<_>>(),
            ));
        }
        assert_eq!(reports[0], reports[1], "{}: calendar diverged from heap", sc.name);
        assert_eq!(reports[0], reports[2], "{}: auto diverged from heap", sc.name);
    }
}

#[test]
fn auto_backend_migrates_on_deep_queues_and_counters_prove_it() {
    // A deep pending-timer population (every arrival's release timer is
    // scheduled up front) pushes the auto queue past its high-water mark:
    // the calendar must come on (resizes > 0) without moving the trace.
    use simcal::sim::{CacheSpec, HorizonSpec, SimConfig, WorkloadSource};
    use simcal::workload::{ArrivalProcess, Distribution, WorkloadSpec};

    let n_jobs = 1_500;
    let horizon = 600.0;
    let base = Scenario {
        name: "deep-queue".to_string(),
        platform: simcal::platform::catalog::scfn(),
        workload: WorkloadSource::Spec {
            spec: WorkloadSpec {
                n_jobs,
                files_per_job: 1,
                file_size: Distribution::Constant(4e6),
                flops_per_byte: Distribution::Constant(6.0),
                output_bytes: Distribution::Constant(1e6),
                arrival: ArrivalProcess::Poisson { rate: n_jobs as f64 / horizon },
            },
            seed: 0xd33b,
        },
        cache: CacheSpec::canonical(0.5),
        config: SimConfig::default(),
        multisite: None,
        horizon: Some(HorizonSpec::new(horizon)),
    };
    let mut hashes = Vec::new();
    for backend in BACKENDS {
        let mut sc = base.clone();
        sc.config.event_list = backend;
        let mut session = SimSession::new();
        let report = sc.try_run_report(&mut session, 1).unwrap();
        let stats = session.engine_stats();
        assert!(stats.event_pushes as usize >= n_jobs, "{backend:?}: queue barely used");
        if backend != EventListBackend::Heap {
            assert!(
                stats.calendar_resizes > 0,
                "{backend:?}: calendar never engaged on a {n_jobs}-timer queue"
            );
        }
        hashes.push(SweepResult::from_trace(&sc.name, &report.trace).trace_hash);
    }
    assert_eq!(hashes[0], hashes[1]);
    assert_eq!(hashes[0], hashes[2]);
}
