//! Property-based tests of the fluid kernel through the public API:
//! max–min fairness invariants and engine conservation laws.

use proptest::prelude::*;

use simcal::des::{solve_max_min, Engine, FlowInput, FlowSpec, ResourceInput, ResourceSpec, Tag};

/// Strategy: a random sharing problem with up to 6 resources and 20 flows.
#[allow(clippy::type_complexity)]
fn sharing_problem() -> impl Strategy<Value = (Vec<f64>, Vec<(Vec<usize>, Option<f64>)>)> {
    (1usize..=6).prop_flat_map(|n_res| {
        let caps = proptest::collection::vec(1.0f64..1000.0, n_res);
        let flows = proptest::collection::vec(
            (
                proptest::collection::btree_set(0..n_res, 0..=n_res.min(3)),
                proptest::option::of(0.5f64..500.0),
            ),
            1..20,
        );
        (caps, flows).prop_map(|(caps, flows)| {
            let flows = flows
                .into_iter()
                .map(|(route, cap)| (route.into_iter().collect::<Vec<_>>(), cap))
                .collect();
            (caps, flows)
        })
    })
}

fn solve(caps: &[f64], flows: &[(Vec<usize>, Option<f64>)]) -> Vec<f64> {
    let rs: Vec<ResourceInput> = caps.iter().map(|&c| ResourceInput { capacity: c }).collect();
    let fs: Vec<FlowInput> =
        flows.iter().map(|(route, cap)| FlowInput { route: route.clone(), cap: *cap }).collect();
    let mut rates = Vec::new();
    solve_max_min(&rs, &fs, &mut rates);
    rates
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Feasibility: no resource is oversubscribed, no cap is violated,
    /// and all rates are non-negative.
    #[test]
    fn max_min_allocation_is_feasible((caps, flows) in sharing_problem()) {
        let rates = solve(&caps, &flows);
        prop_assert_eq!(rates.len(), flows.len());
        for (r, &cap) in caps.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .map(|((route, _), &rate)| route.iter().filter(|&&x| x == r).count() as f64 * rate)
                .sum();
            prop_assert!(used <= cap * (1.0 + 1e-6) + 1e-6, "resource {} oversubscribed", r);
        }
        for ((_, cap), &rate) in flows.iter().zip(&rates) {
            prop_assert!(rate >= 0.0);
            if let Some(c) = cap {
                prop_assert!(rate <= c * (1.0 + 1e-9));
            }
        }
    }

    /// Every flow is bottlenecked: it runs at its cap, at the solver's
    /// unconstrained maximum, or crosses at least one saturated resource.
    #[test]
    fn every_flow_has_a_bottleneck((caps, flows) in sharing_problem()) {
        let rates = solve(&caps, &flows);
        let used: Vec<f64> = (0..caps.len())
            .map(|r| {
                flows
                    .iter()
                    .zip(&rates)
                    .map(|((route, _), &rate)| {
                        route.iter().filter(|&&x| x == r).count() as f64 * rate
                    })
                    .sum()
            })
            .collect();
        for ((route, cap), &rate) in flows.iter().zip(&rates) {
            let at_cap = cap.map(|c| rate >= c * (1.0 - 1e-9)).unwrap_or(false);
            let unconstrained = route.is_empty();
            let saturated = route
                .iter()
                .any(|&r| used[r] >= caps[r] * (1.0 - 1e-6));
            prop_assert!(
                at_cap || unconstrained || saturated,
                "flow with rate {} has no bottleneck",
                rate
            );
        }
    }

    /// Pareto efficiency on a single resource: uncapped flows saturate it.
    #[test]
    fn single_resource_is_work_conserving(
        cap in 1.0f64..1000.0,
        n_flows in 1usize..20,
    ) {
        let flows: Vec<(Vec<usize>, Option<f64>)> =
            (0..n_flows).map(|_| (vec![0], None)).collect();
        let rates = solve(&[cap], &flows);
        let used: f64 = rates.iter().sum();
        prop_assert!((used - cap).abs() < 1e-6 * cap);
        // And fairness: all equal.
        for &r in &rates {
            prop_assert!((r - cap / n_flows as f64).abs() < 1e-6 * cap);
        }
    }

    /// Engine conservation: total service time for sequential flows on one
    /// resource equals total demand / capacity regardless of arrival mix.
    #[test]
    fn engine_conserves_work(
        demands in proptest::collection::vec(1.0f64..100.0, 1..12),
        cap in 1.0f64..50.0,
    ) {
        let mut engine = Engine::new();
        let r = engine.add_resource(ResourceSpec::constant(cap));
        for (i, &d) in demands.iter().enumerate() {
            engine.start_flow(FlowSpec::new(d, &[r], Tag(i as u64)));
        }
        let end = engine.drain();
        let expected = demands.iter().sum::<f64>() / cap;
        prop_assert!((end - expected).abs() < 1e-6 * expected.max(1.0),
            "end {} vs expected {}", end, expected);
    }

    /// Engine monotonicity: events are delivered at non-decreasing times.
    #[test]
    fn engine_time_is_monotone(
        demands in proptest::collection::vec(1.0f64..100.0, 1..10),
        latencies in proptest::collection::vec(0.0f64..5.0, 1..10),
    ) {
        let mut engine = Engine::new();
        let r = engine.add_resource(ResourceSpec::constant(10.0));
        for (i, (&d, &l)) in demands.iter().zip(&latencies).enumerate() {
            engine.start_flow(FlowSpec::new(d, &[r], Tag(i as u64)).with_latency(l));
        }
        let mut last = 0.0;
        while engine.next().is_some() {
            prop_assert!(engine.now() >= last - 1e-12);
            last = engine.now();
        }
    }
}
