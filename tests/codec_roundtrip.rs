//! Wire-codec round-trip properties over the whole scenario space.
//!
//! The distributed sweep's correctness rests on the codec being an exact,
//! deterministic bijection on the scenarios the repository actually runs:
//!
//! 1. `encode → decode → encode` is **byte-identical** for every registry
//!    built-in, every `icd_grid` expansion, every ground-truth emulator
//!    scenario, and randomized workload-spec scenarios;
//! 2. decoding is forward-compatible: a version-bumped payload carrying
//!    unknown fields decodes to the same scenario;
//! 3. a missing required field is a structured [`CodecError`], never a
//!    panic.

use proptest::prelude::*;

use simcal::sim::codec::{
    decode_scenario, encode_scenario, scenario_from_json, scenario_to_json, CodecError, Json,
};
use simcal::sim::{CacheSpec, Scenario, ScenarioRegistry, SimConfig, WorkloadSource};
use simcal::study::dist::{decode_sweep_result, encode_sweep_result};
use simcal::study::{SweepResult, SweepRunner};
use simcal::workload::{ArrivalProcess, Distribution, WorkloadSpec};

fn assert_round_trips(sc: &Scenario) {
    let text = encode_scenario(sc);
    let back = decode_scenario(&text)
        .unwrap_or_else(|e| panic!("decode of {:?} failed: {e}\npayload: {text}", sc.name));
    assert_eq!(&back, sc, "{}: decoded scenario differs", sc.name);
    assert_eq!(encode_scenario(&back), text, "{}: re-encode not byte-identical", sc.name);
}

#[test]
fn every_builtin_scenario_round_trips() {
    let reg = ScenarioRegistry::builtin();
    assert_eq!(reg.len(), 28, "the registry's 28 built-ins are the covered universe");
    for e in reg.entries() {
        assert_round_trips(&e.scenario);
    }
    for e in ScenarioRegistry::reduced().entries() {
        assert_round_trips(&e.scenario);
    }
}

#[test]
fn every_icd_grid_expansion_round_trips() {
    for reg in [ScenarioRegistry::builtin(), ScenarioRegistry::reduced()] {
        let grid = reg.icd_grid(&[0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(grid.len(), reg.len() * 5);
        for sc in &grid {
            assert_round_trips(sc);
        }
    }
}

#[test]
fn ground_truth_scenarios_round_trip() {
    // Concrete shared workloads + noisy emulator configs (write-through,
    // compute factors, jitter) — the other half of the scenario space.
    let workload = std::sync::Arc::new(simcal::workload::scaled_cms_workload(6, 3, 10e6));
    let truth = simcal::groundtruth::TruthParams::case_study();
    for kind in simcal::platform::PlatformKind::ALL {
        for sc in
            simcal::groundtruth::ground_truth_scenarios(kind, &workload, &truth, &[0.0, 0.5, 1.0])
        {
            assert_round_trips(&sc);
        }
    }
}

#[test]
fn decoded_scenarios_run_bit_identically() {
    // The codec preserves behaviour, not just structure: a decoded
    // scenario simulates to the same trace hash as the original.
    let grid: Vec<Scenario> = ScenarioRegistry::reduced().scenarios().into_iter().take(3).collect();
    let decoded: Vec<Scenario> =
        grid.iter().map(|sc| decode_scenario(&encode_scenario(sc)).unwrap()).collect();
    let runner = SweepRunner::new().with_workers(1);
    let a: Vec<_> = runner.run(&grid).iter().map(SweepResult::fingerprint).collect();
    let b: Vec<_> = runner.run(&decoded).iter().map(SweepResult::fingerprint).collect();
    assert_eq!(a, b);
}

#[test]
fn version_bumped_payloads_with_unknown_fields_decode() {
    for e in ScenarioRegistry::builtin().entries() {
        let mut json = scenario_to_json(&e.scenario);
        let fields = json.fields_mut().unwrap();
        for (k, v) in fields.iter_mut() {
            if k == "v" {
                *v = Json::Num(2.0);
            }
        }
        fields.push((
            "added_in_v2".to_string(),
            Json::Obj(vec![("nested".to_string(), Json::Arr(vec![Json::Num(1.0), Json::Null]))]),
        ));
        let back = scenario_from_json(&json)
            .unwrap_or_else(|err| panic!("{}: v2 payload rejected: {err}", e.scenario.name));
        assert_eq!(back, e.scenario);
    }
}

#[test]
fn each_missing_top_level_field_is_a_structured_error() {
    let sc = ScenarioRegistry::builtin().scenarios().remove(0);
    for field in ["v", "name", "platform", "workload", "cache", "config"] {
        let mut json = scenario_to_json(&sc);
        json.fields_mut().unwrap().retain(|(k, _)| k != field);
        match scenario_from_json(&json) {
            Err(CodecError::MissingField { field: f, .. }) => assert_eq!(f, field),
            other => panic!("dropping {field:?} gave {other:?}, expected MissingField"),
        }
    }
}

#[test]
fn sweep_results_round_trip_for_the_whole_reduced_registry() {
    let grid = ScenarioRegistry::reduced().scenarios();
    let results = SweepRunner::new().with_workers(2).run(&grid);
    for r in &results {
        let text = encode_sweep_result(r);
        let back = decode_sweep_result(&text).unwrap();
        assert_eq!(back.fingerprint(), r.fingerprint(), "{}", r.name);
        assert_eq!(encode_sweep_result(&back), text, "{}: re-encode differs", r.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized generative scenarios: distribution parameters, seeds,
    /// cache plans, and granularities drawn from the plausible ranges all
    /// survive the round trip byte-exactly.
    #[test]
    fn randomized_spec_scenarios_round_trip(
        n_jobs in 1usize..40,
        files in 1usize..8,
        dist_kind in 0u32..5,
        arr_kind in 0u32..4,
        scale in 1.0f64..1e9,
        sigma in 0.0f64..2.0,
        rate in 1e-3f64..10.0,
        wseed in 0u64..u64::MAX,
        icd_milli in 0u64..1000,
        pinned_seed in proptest::option::of(0u64..u64::MAX),
    ) {
        let file_size = match dist_kind {
            0 => Distribution::Constant(scale),
            1 => Distribution::Uniform { lo: scale * 0.5, hi: scale * 1.5 },
            2 => Distribution::Normal { mean: scale, std_dev: scale * 0.1, floor: 0.0 },
            3 => Distribution::LogNormal { mu: scale.ln(), sigma },
            _ => Distribution::Exponential { rate: 1.0 / scale },
        };
        let arrival = match arr_kind {
            0 => ArrivalProcess::Immediate,
            1 => ArrivalProcess::Poisson { rate },
            2 => ArrivalProcess::Diurnal {
                base_rate: rate,
                amplitude: (sigma / 2.0).min(1.0),
                period: 60.0 / rate,
            },
            _ => ArrivalProcess::Bursty {
                batch_size: files.max(1),
                batch_interval: 10.0 / rate,
            },
        };
        let sc = Scenario {
            name: format!("prop-{dist_kind}-{wseed:x}"),
            platform: simcal::platform::catalog::fcfn(),
            workload: WorkloadSource::Spec {
                spec: WorkloadSpec {
                    n_jobs,
                    files_per_job: files,
                    file_size,
                    flops_per_byte: Distribution::Constant(6.0),
                    output_bytes: Distribution::Constant(scale * 0.1),
                    arrival,
                },
                seed: wseed,
            },
            cache: CacheSpec {
                icd: icd_milli as f64 / 1000.0,
                seed: pinned_seed,
            },
            config: SimConfig::default(),
            multisite: None,
            horizon: None,
        };
        let text = encode_scenario(&sc);
        let back = decode_scenario(&text).unwrap();
        prop_assert_eq!(&back, &sc);
        prop_assert_eq!(encode_scenario(&back), text);
    }
}
