//! Window-size × fault-schedule product property for the TCP transport.
//!
//! The batched v5 protocol must be **window-invariant**: whatever claim
//! window the fleet runs at — lock-step 1, any fixed size, or the
//! adaptive controller — and whatever seeded fault schedule one worker
//! suffers mid-window, the merged sweep results are bit-identical to the
//! single-process local runner. The window is a throughput knob, never a
//! correctness knob.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use proptest::prelude::*;

use simcal::sim::{Scenario, ScenarioRegistry};
use simcal::study::net::read_addr;
use simcal::study::{FaultPlan, SweepResult, SweepRunner, TcpSweep, TcpWorker};

fn grid() -> Vec<Scenario> {
    ScenarioRegistry::reduced().scenarios().into_iter().take(4).collect()
}

fn fingerprints(rs: &[SweepResult]) -> Vec<(String, Vec<u64>, u64, u64)> {
    rs.iter().map(SweepResult::fingerprint).collect()
}

fn fresh_spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simcal-tcp-window-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn wait_addr(spool: &Path) -> String {
    let start = Instant::now();
    loop {
        if let Some(addr) = read_addr(spool) {
            return addr;
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "coordinator never published an address"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Run one coordinator and two workers — one sabotaged by `plan` — at
/// the given claim window (`None` = adaptive) and return the merged
/// result fingerprints.
fn run_fleet(
    tag: &str,
    window: Option<usize>,
    seed: u64,
    plan: FaultPlan,
) -> Vec<(String, Vec<u64>, u64, u64)> {
    let grid = grid();
    let spool = fresh_spool(tag);
    let coord = TcpSweep::new(&spool, "127.0.0.1:0")
        .with_stall_timeout(Duration::from_millis(1500))
        .with_seed(seed)
        .with_claim_window(window);
    let results = std::thread::scope(|scope| {
        let coord = scope.spawn(|| coord.run(&grid));
        let addr = wait_addr(&spool);
        let worker = |seed: u64, plan: FaultPlan| {
            TcpWorker::new(addr.clone())
                .with_heartbeat(Duration::from_millis(25))
                .with_patience(Duration::from_millis(600))
                .with_seed(seed)
                .with_claim_window(window)
                .with_fault(plan)
        };
        let saboteur = worker(seed, plan);
        let healthy = worker(seed ^ 0xFFFF, FaultPlan::none());
        let w1 = scope.spawn(move || saboteur.run());
        let w2 = scope.spawn(move || healthy.run());
        let (results, _summary) = coord.join().expect("coordinator").expect("sweep");
        w1.join().expect("saboteur").ok();
        w2.join().expect("healthy").ok();
        results
    });
    std::fs::remove_dir_all(&spool).ok();
    fingerprints(&results)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any claim window (0 stands for the adaptive controller) crossed
    /// with any seeded fault schedule merges bit-identically to the
    /// local runner.
    #[test]
    fn any_window_times_any_fault_seed_merges_bit_identically(
        window in 0usize..=8,
        seed in 0u64..1024,
    ) {
        let expected = fingerprints(&SweepRunner::new().with_workers(2).run(&grid()));
        let window = (window > 0).then_some(window);
        let tag = format!("{}-{seed}", window.map_or("auto".into(), |w| w.to_string()));
        let got = run_fleet(&tag, window, seed, FaultPlan::seeded(seed));
        prop_assert_eq!(
            got,
            expected,
            "window {:?} x fault seed {} diverged from the local artifact",
            window,
            seed
        );
    }
}
