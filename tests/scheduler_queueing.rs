//! Property tests of the scheduler's queue/release path under job release
//! times — the dispatch machinery that was dead code while every workload
//! started at t = 0.
//!
//! The load-bearing guarantees:
//!
//! 1. **release honoring** — no job starts before its release instant;
//! 2. **FCFS dispatch** — jobs are dispatched in submission order (start
//!    times are nondecreasing in job index, since index order is
//!    submission order);
//! 3. **work conservation** — a job only waits while every slot is busy:
//!    mid-wait the platform runs exactly `total_slots` jobs, and the
//!    queued job inherits a freed slot the instant one appears;
//! 4. **saturation policy-invariance** — once every slot is busy, queued
//!    jobs inherit whichever slot frees up, so the slot-selection policy
//!    stops mattering: FCFS order holds under every policy, and on
//!    homogeneous nodes the policies are bit-identical end to end.

use proptest::prelude::*;

use simcal::platform::{PlatformBuilder, PlatformSpec};
use simcal::sim::{simulate, SchedulerPolicy, SimConfig};
use simcal::storage::CachePlan;
use simcal::workload::{ExecutionTrace, Workload, WorkloadSpec};

/// A small platform with the given per-node core counts.
fn platform(cores: &[u32]) -> PlatformSpec {
    let mut b = PlatformBuilder::new("queue-test").wan_gbps(10.0);
    for (i, &c) in cores.iter().enumerate() {
        b = b.node(format!("n{i}"), c);
    }
    b.build()
}

/// A workload of `n_jobs` identical jobs with the given release offsets
/// (sorted internally — index order must be submission order).
fn workload(n_jobs: usize, mut releases: Vec<f64>) -> Workload {
    releases.resize(n_jobs, 0.0);
    releases.sort_by(f64::total_cmp);
    let mut w = WorkloadSpec::constant(n_jobs, 1, 20e6, 8.0, 1e5).generate(0);
    for (j, r) in w.jobs.iter_mut().zip(releases) {
        j.release = r;
    }
    w.validate();
    w
}

fn run(p: &PlatformSpec, w: &Workload, policy: SchedulerPolicy) -> ExecutionTrace {
    let cfg = SimConfig { scheduler: policy, ..SimConfig::default() };
    let cache = CachePlan::new(w, 1.0, 0);
    let trace = simulate(p, w, &cache, &cfg);
    simcal::sim::check_trace(&trace, w, p);
    trace
}

/// Number of jobs running at instant `t` (start <= t < end).
fn running_at(trace: &ExecutionTrace, t: f64) -> usize {
    trace.jobs.iter().filter(|j| j.start <= t && t < j.end).count()
}

/// The three queue-path invariants on one trace.
fn assert_queue_invariants(trace: &ExecutionTrace, total_slots: usize) {
    // 1. Releases are honored.
    for j in &trace.jobs {
        assert!(j.start >= j.release, "job {} started before its release", j.job);
    }
    // 2. FCFS: submission (index) order is dispatch order.
    for pair in trace.jobs.windows(2) {
        assert!(
            pair[0].start <= pair[1].start,
            "FCFS violated: job {} started after job {}",
            pair[0].job,
            pair[1].job
        );
    }
    // 3. Work conservation for every job that waited: mid-wait the
    // platform is saturated, and the start coincides exactly with some
    // earlier job's completion (the freed slot is inherited, on the same
    // (node, core)).
    for j in trace.jobs.iter().filter(|j| j.queue_wait() > 0.0) {
        let mid = j.release + 0.5 * j.queue_wait();
        assert_eq!(
            running_at(trace, mid),
            total_slots,
            "job {} waited while a slot was idle",
            j.job
        );
        assert!(
            trace.jobs.iter().any(|k| k.end == j.start && k.node == j.node && k.core == j.core),
            "job {} did not inherit a freed slot at its start",
            j.job
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random platform shapes, overcommit factors, and release patterns:
    /// the queue path honors releases, dispatches FCFS, and conserves
    /// work under both slot-selection policies.
    #[test]
    fn queue_path_invariants_hold(
        shape in proptest::collection::vec(1u32..5, 1..4),
        overcommit in 1usize..4,
        spread in 0.0f64..30.0,
        seed in 0u64..1000,
        widest in 0u32..2,
    ) {
        let p = platform(&shape);
        let slots: usize = shape.iter().map(|&c| c as usize).sum();
        let n_jobs = slots * overcommit + 1;
        // Deterministic pseudo-random release offsets from the seed.
        let releases: Vec<f64> = (0..n_jobs)
            .map(|i| {
                let mix = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
                (mix % 1000) as f64 / 1000.0 * spread
            })
            .collect();
        let w = workload(n_jobs, releases);
        let policy = if widest == 1 {
            SchedulerPolicy::WidestNodeFirst
        } else {
            SchedulerPolicy::FirstFreeSlot
        };
        let trace = run(&p, &w, policy);
        assert_queue_invariants(&trace, slots);
    }

    /// On homogeneous nodes the policies share one slot order, so the
    /// whole trace — queueing included — is bit-identical between them:
    /// the strongest form of "policy stops mattering once saturated".
    #[test]
    fn saturated_homogeneous_platform_is_policy_invariant(
        nodes in 1usize..4,
        cores in 1u32..4,
        spread in 0.0f64..10.0,
    ) {
        let p = platform(&vec![cores; nodes]);
        let slots = nodes * cores as usize;
        let releases: Vec<f64> =
            (0..3 * slots).map(|i| i as f64 / (3 * slots) as f64 * spread).collect();
        let w = workload(3 * slots, releases);
        let a = run(&p, &w, SchedulerPolicy::FirstFreeSlot);
        let b = run(&p, &w, SchedulerPolicy::WidestNodeFirst);
        prop_assert_eq!(a.jobs, b.jobs);
        prop_assert_eq!(a.engine_events, b.engine_events);
    }
}

#[test]
fn heterogeneous_saturation_keeps_fcfs_under_both_policies() {
    // 3x overcommitted heterogeneous pool, staggered releases: the two
    // policies place the *initial* free-slot wave differently, but every
    // queued job still dispatches in submission order (the queue is the
    // policy-free part of the scheduler).
    let p = platform(&[1, 4, 2]);
    let releases: Vec<f64> = (0..21).map(|i| i as f64 * 0.02).collect();
    let w = workload(21, releases);
    for policy in [SchedulerPolicy::FirstFreeSlot, SchedulerPolicy::WidestNodeFirst] {
        let trace = run(&p, &w, policy);
        assert_queue_invariants(&trace, 7);
        assert!(trace.mean_queue_wait() > 0.0, "3x overcommit must queue");
    }
}

#[test]
fn burst_release_into_a_busy_pool_queues_in_index_order() {
    // All slots busy from t=0; a burst of late jobs lands at one instant.
    // Tie-broken by scheduling sequence = job index: FCFS survives ties.
    let p = platform(&[2]);
    let mut releases = vec![0.0, 0.0];
    releases.extend([5.0; 6]);
    let w = workload(8, releases);
    let trace = run(&p, &w, SchedulerPolicy::FirstFreeSlot);
    assert_queue_invariants(&trace, 2);
    let burst: Vec<_> = trace.jobs.iter().filter(|j| j.release == 5.0).collect();
    assert_eq!(burst.len(), 6);
    for pair in burst.windows(2) {
        assert!(pair[0].start <= pair[1].start, "same-instant releases dispatch by index");
        assert!(pair[0].job < pair[1].job);
    }
    assert!(trace.max_queue_wait() > 0.0);
}
