//! Differential oracle for the incremental component-scoped rate solver.
//!
//! The engine recomputes max–min rates per dirty connected component; a
//! correct implementation is indistinguishable from re-solving the whole
//! allocation globally after every change. This test drives randomized
//! flow/resource topologies through the engine — starts (with latencies,
//! caps, duplicate route entries, empty routes, zero demands), bursts of
//! identical flows that complete in same-timestamp batches, completions,
//! and cancellations — and after every step compares every active flow's
//! rate against a fresh **global** `solve_max_min` over the full live
//! set. `solve_max_min` is an independently-written reference
//! implementation (one constraint frozen per round), so the engine's
//! batched settling, swap inheritance, warm re-fills, and closed-form
//! component solves are all checked against code sharing none of their
//! structure.
//!
//! Well over 1000 randomized cases run per invocation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use simcal::des::{
    solve_max_min, Engine, FlowId, FlowInput, FlowSpec, FlowStatus, ResourceId, ResourceInput,
    ResourceSpec, Tag,
};

/// The flow id carried by an event (completions only in these scenarios).
fn ev_flow_id(ev: &simcal::des::Event) -> FlowId {
    match *ev {
        simcal::des::Event::FlowCompleted { flow, .. } => flow,
        simcal::des::Event::TimerFired { .. } => unreachable!("no user timers in this test"),
    }
}

/// Test-side record of a started flow (the oracle's view of the topology).
struct FlowRecord {
    id: FlowId,
    /// Route as indices into the test's resource table.
    route: Vec<usize>,
    cap: Option<f64>,
}

/// Global max–min oracle over all currently-active flows, reproducing the
/// engine's effective-capacity computation (per-resource active flow
/// counts, duplicates included).
fn oracle_rates(
    engine: &Engine,
    specs: &[ResourceSpec],
    flows: &[FlowRecord],
) -> Vec<(FlowId, f64)> {
    let active: Vec<&FlowRecord> =
        flows.iter().filter(|f| engine.flow_status(f.id) == FlowStatus::Active).collect();
    let mut counts = vec![0usize; specs.len()];
    for f in &active {
        for &r in &f.route {
            counts[r] += 1;
        }
    }
    let resources: Vec<ResourceInput> = specs
        .iter()
        .zip(&counts)
        .map(|(s, &n)| ResourceInput { capacity: s.capacity.effective(n) })
        .collect();
    let inputs: Vec<FlowInput> =
        active.iter().map(|f| FlowInput { route: f.route.clone(), cap: f.cap }).collect();
    let mut rates = Vec::new();
    solve_max_min(&resources, &inputs, &mut rates);
    active.into_iter().map(|f| f.id).zip(rates).collect()
}

fn assert_rates_match(
    engine: &Engine,
    specs: &[ResourceSpec],
    flows: &[FlowRecord],
    context: &str,
) {
    for (id, expected) in oracle_rates(engine, specs, flows) {
        let got = engine.flow_rate(id);
        let tol = 1e-9 * expected.abs().max(1.0);
        assert!(
            (got - expected).abs() <= tol,
            "{context}: flow {id:?} rate {got} != oracle {expected}"
        );
    }
}

fn check_case(case: u64, rng: &mut StdRng) {
    let mut engine = Engine::new();
    let n_res = rng.random_range(0..6usize);
    let mut specs: Vec<ResourceSpec> = Vec::new();
    let mut res_ids: Vec<ResourceId> = Vec::new();
    for _ in 0..n_res {
        let cap = rng.random_range(1.0..1000.0f64);
        let spec = if rng.random::<f64>() < 0.3 {
            ResourceSpec::degrading(cap, rng.random_range(0.0..2.0f64))
        } else {
            ResourceSpec::constant(cap)
        };
        res_ids.push(engine.add_resource(spec));
        specs.push(spec);
    }

    let mut flows: Vec<FlowRecord> = Vec::new();
    let n_ops = rng.random_range(4..40usize);
    for op in 0..n_ops {
        let roll: f64 = rng.random();
        if roll < 0.45 || flows.is_empty() {
            // Start a flow: random route (possibly empty, possibly with a
            // duplicated resource), optional cap, optional latency.
            let route_len = if n_res == 0 { 0 } else { rng.random_range(0..=n_res.min(3)) };
            let mut route: Vec<usize> =
                (0..route_len).map(|_| rng.random_range(0..n_res)).collect();
            if route.len() > 1 && rng.random::<f64>() < 0.15 {
                route[1] = route[0]; // duplicate entry: consumes two shares
            }
            let cap = if rng.random::<f64>() < 0.4 {
                Some(rng.random_range(0.5..500.0f64))
            } else {
                None
            };
            let demand =
                if rng.random::<f64>() < 0.1 { 0.0 } else { rng.random_range(1.0..500.0f64) };
            let ids: Vec<ResourceId> = route.iter().map(|&r| res_ids[r]).collect();
            let mut spec = FlowSpec::new(demand, &ids, Tag(op as u64));
            if let Some(c) = cap {
                spec = spec.with_cap(c);
            }
            if rng.random::<f64>() < 0.25 {
                spec = spec.with_latency(rng.random_range(0.0..3.0f64));
            }
            let id = engine.start_flow(spec);
            flows.push(FlowRecord { id, route, cap });
        } else if roll < 0.6 && n_res > 0 {
            // A burst of identical flows on one resource: equal signatures
            // mean equal rates forever, so they complete in a
            // same-timestamp batch (zero demands batch at the current
            // instant). This exercises batch-pop, batched settling, and
            // the multi-candidate swap list against the oracle.
            let r = rng.random_range(0..n_res);
            let m = rng.random_range(2..=4usize);
            let demand =
                if rng.random::<f64>() < 0.2 { 0.0 } else { rng.random_range(1.0..100.0f64) };
            let cap =
                if rng.random::<f64>() < 0.3 { Some(rng.random_range(0.5..50.0f64)) } else { None };
            for j in 0..m {
                let mut spec =
                    FlowSpec::new(demand, &[res_ids[r]], Tag(5000 + (op * 10 + j) as u64));
                if let Some(c) = cap {
                    spec = spec.with_cap(c);
                }
                let id = engine.start_flow(spec);
                flows.push(FlowRecord { id, route: vec![r], cap });
            }
        } else if roll < 0.85 {
            // Advance one event; after a completion, sometimes immediately
            // reissue an identically-shaped flow (the pipelined steady
            // state), exercising the swap fast path against the oracle.
            if let Some(ev) = engine.next() {
                let completed = flows.iter().position(|f| {
                    engine.flow_status(f.id) == FlowStatus::Completed && f.id == ev_flow_id(&ev)
                });
                if let Some(i) = completed {
                    if rng.random::<f64>() < 0.4 {
                        let route = flows[i].route.clone();
                        let cap = flows[i].cap;
                        let ids: Vec<ResourceId> = route.iter().map(|&r| res_ids[r]).collect();
                        let mut spec = FlowSpec::new(
                            rng.random_range(1.0..200.0f64),
                            &ids,
                            Tag(1000 + op as u64),
                        );
                        if let Some(c) = cap {
                            spec = spec.with_cap(c);
                        }
                        let id = engine.start_flow(spec);
                        flows.push(FlowRecord { id, route, cap });
                    }
                }
            }
        } else {
            // Cancel a random flow (possibly already finished: no-op).
            let i = rng.random_range(0..flows.len());
            engine.cancel_flow(flows[i].id);
        }

        // Differential check: settled incremental rates == global solve.
        engine.settle_rates();
        assert_rates_match(&engine, &specs, &flows, &format!("case {case} op {op}"));
    }

    // Drain to completion: the engine must terminate and keep matching the
    // oracle at every completion.
    let mut guard = 0usize;
    while engine.next().is_some() {
        engine.settle_rates();
        assert_rates_match(&engine, &specs, &flows, &format!("case {case} drain"));
        guard += 1;
        assert!(guard < 10_000, "case {case}: drain did not terminate");
    }
}

#[test]
fn incremental_solver_matches_global_oracle_on_1500_random_topologies() {
    let mut rng = StdRng::seed_from_u64(0x1ec0_5eed);
    for case in 0..1500 {
        check_case(case, &mut rng);
    }
}

/// Deterministic regression of the subsumed swap fast path: pipelined
/// identical start/complete pairs interleaved with a foreign component.
#[test]
fn pipelined_chunk_stream_matches_oracle() {
    let mut engine = Engine::new();
    let specs = [ResourceSpec::constant(100.0), ResourceSpec::degrading(50.0, 1.0)];
    let hot = engine.add_resource(specs[0]);
    let cold = engine.add_resource(specs[1]);
    let mut flows: Vec<FlowRecord> = Vec::new();

    // Two long-lived flows on the degrading resource.
    for _ in 0..2 {
        let id = engine.start_flow(FlowSpec::new(1e5, &[cold], Tag(99)));
        flows.push(FlowRecord { id, route: vec![1], cap: None });
    }
    // A pipelined stream of identical capped chunks on the hot resource.
    let id = engine.start_flow(FlowSpec::new(10.0, &[hot], Tag(0)).with_cap(25.0));
    flows.push(FlowRecord { id, route: vec![0], cap: Some(25.0) });
    for k in 1..200u64 {
        let ev = engine.next().expect("stream continues");
        if ev.tag() == Tag(99) {
            break; // the cold flows only finish long after the stream
        }
        let id = engine.start_flow(FlowSpec::new(10.0, &[hot], Tag(k)).with_cap(25.0));
        flows.push(FlowRecord { id, route: vec![0], cap: Some(25.0) });
        engine.settle_rates();
        assert_rates_match(&engine, &specs, &flows, &format!("step {k}"));
    }
    // The whole stream ran component-scoped: every solve touched only the
    // hot component's single flow, never the cold pair.
    let s = engine.stats();
    assert!(s.full_solves <= 1, "at most the initial settle may span everything");
}

/// Deterministic regression for same-timestamp batches and zero-demand
/// flows: a burst of identical chunks completes as one batch (with the
/// background flows' rates re-settling correctly), and zero-demand flows
/// batch-complete at the instant they start.
#[test]
fn simultaneous_batches_and_zero_demand_flows_match_oracle() {
    let mut engine = Engine::new();
    let specs = [ResourceSpec::constant(60.0), ResourceSpec::constant(40.0)];
    let a = engine.add_resource(specs[0]);
    let b = engine.add_resource(specs[1]);
    let mut flows: Vec<FlowRecord> = Vec::new();
    // One long-lived background flow per resource.
    for (i, &r) in [a, b].iter().enumerate() {
        let id = engine.start_flow(FlowSpec::new(1e4, &[r], Tag(900 + i as u64)));
        flows.push(FlowRecord { id, route: vec![i], cap: None });
    }
    // Four identical chunks on `a`: equal rates, one completion batch.
    for k in 0..4u64 {
        let id = engine.start_flow(FlowSpec::new(30.0, &[a], Tag(k)));
        flows.push(FlowRecord { id, route: vec![0], cap: None });
    }
    // Three zero-demand flows on `b`: batch-complete at t = 0.
    for k in 10..13u64 {
        let id = engine.start_flow(FlowSpec::new(0.0, &[b], Tag(k)));
        flows.push(FlowRecord { id, route: vec![1], cap: None });
    }

    let mut events = 0usize;
    while let Some(ev) = engine.next() {
        engine.settle_rates();
        assert_rates_match(&engine, &specs, &flows, &format!("event {events} tag {:?}", ev.tag()));
        events += 1;
        assert!(events <= 9, "exactly 9 completions expected");
    }
    assert_eq!(events, 9);
    let s = engine.stats();
    assert!(s.batched_settles >= 2, "zero-demand and chunk batches both drained as batches");
    assert_eq!(s.batched_completions, 7, "4 chunks + 3 zero-demand flows");
}
