//! Cross-crate behavioural tests of the simulator: event-count scaling
//! (the paper's O(s/B + s/b) law), bottleneck physics, and determinism.

use simcal::platform::{catalog, HardwareParams, PlatformKind};
use simcal::sim::{check_trace, simulate, SimConfig};
use simcal::storage::{CachePlan, XRootDConfig};
use simcal::units;
use simcal::workload::{cms_workload, scaled_cms_workload};

fn tuned_hardware() -> HardwareParams {
    let mut hw = HardwareParams::defaults();
    hw.core_speed = units::mflops(1970.0);
    hw.disk_bw = units::mbytes_per_sec(17.0);
    hw.page_cache_bw = units::gbytes_per_sec(10.0);
    hw.wan_bw = units::mbps(1150.0);
    hw
}

/// The Table VI mechanism: simulated event count scales ~linearly with
/// s/B + s_remote/b on the full CMS workload.
#[test]
fn event_count_follows_granularity_law() {
    let w = cms_workload();
    let cache = CachePlan::new(&w, 0.0, 1); // all remote: chunk-dominated
    let hw = tuned_hardware();

    let mut events = Vec::new();
    for g in [XRootDConfig::paper_1s(), XRootDConfig::paper_3s()] {
        let trace = simulate(&catalog::scsn(), &w, &cache, &SimConfig::new(hw, g));
        events.push(trace.engine_events as f64);
    }
    // B and b both shrink 10x from paper_1s to paper_3s; chunk events
    // dominate at ICD 0, so the ratio should be ~10 (within 2x slack for
    // fixed per-job overheads).
    let ratio = events[1] / events[0];
    assert!((5.0..20.0).contains(&ratio), "event ratio {ratio}");
}

/// Each platform's documented bottleneck drives its fully-cached regime.
#[test]
fn platform_bottlenecks_match_table_ii_expectations() {
    let w = scaled_cms_workload(30, 4, 40e6);
    let hw = tuned_hardware();
    let g = XRootDConfig::new(8e6, 2e6);
    let cache = CachePlan::new(&w, 1.0, 1);

    let mut means = std::collections::HashMap::new();
    for kind in PlatformKind::ALL {
        let trace = simulate(&kind.spec(), &w, &cache, &SimConfig::new(hw, g));
        means.insert(kind, trace.mean_job_time());
    }
    // Fully cached: FC platforms (page cache) are far faster than SC
    // platforms (17 MBps HDD), and the network flavour is irrelevant.
    assert!(means[&PlatformKind::Fcfn] * 5.0 < means[&PlatformKind::Scfn]);
    assert!(means[&PlatformKind::Fcsn] * 5.0 < means[&PlatformKind::Scsn]);
    let fc_ratio = means[&PlatformKind::Fcfn] / means[&PlatformKind::Fcsn];
    assert!((0.95..1.05).contains(&fc_ratio), "WAN must not matter at ICD 1: {fc_ratio}");
}

/// The WAN flavour dominates at ICD 0 (everything remote).
#[test]
fn network_flavour_dominates_at_icd_zero() {
    let w = scaled_cms_workload(30, 4, 40e6);
    let hw_slow = tuned_hardware();
    let mut hw_fast = hw_slow;
    hw_fast.wan_bw = units::mbps(11_500.0);
    let g = XRootDConfig::new(8e6, 2e6);
    let cache = CachePlan::new(&w, 0.0, 1);
    let slow = simulate(&catalog::scsn(), &w, &cache, &SimConfig::new(hw_slow, g));
    let fast = simulate(&catalog::scfn(), &w, &cache, &SimConfig::new(hw_fast, g));
    assert!(
        fast.mean_job_time() * 2.0 < slow.mean_job_time(),
        "fast WAN {} vs slow WAN {}",
        fast.mean_job_time(),
        slow.mean_job_time()
    );
}

/// Full-pipeline determinism: identical configurations produce identical
/// traces, including through the validator.
#[test]
fn full_pipeline_is_deterministic() {
    let w = scaled_cms_workload(30, 4, 40e6);
    let p = catalog::fcsn();
    let cache = CachePlan::new(&w, 0.5, 9);
    let cfg = SimConfig::new(tuned_hardware(), XRootDConfig::new(8e6, 2e6));
    let a = simulate(&p, &w, &cache, &cfg);
    let b = simulate(&p, &w, &cache, &cfg);
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.engine_events, b.engine_events);
    check_trace(&a, &w, &p);
}

/// Write-through (ground-truth realism) slows cached reads on HDD
/// platforms at intermediate ICD — the systematic gap the calibrated
/// simulator cannot represent.
#[test]
fn write_through_loads_the_hdd() {
    let w = scaled_cms_workload(30, 4, 40e6);
    let p = catalog::scsn();
    let cache = CachePlan::new(&w, 0.5, 9);
    let mut cfg = SimConfig::new(tuned_hardware(), XRootDConfig::new(8e6, 2e6));
    let without = simulate(&p, &w, &cache, &cfg);
    cfg.cache_write_through = true;
    let with = simulate(&p, &w, &cache, &cfg);
    assert!(
        with.mean_job_time() > without.mean_job_time() * 1.02,
        "write-through should slow the run: {} vs {}",
        with.mean_job_time(),
        without.mean_job_time()
    );
}
