//! Scenario-family calibration: end-to-end behaviour plus the
//! single-platform regression guarantee.
//!
//! The re-cut contract of this subsystem: `CaseObjective` (the paper's
//! single-platform calibration) is the 1-member-family degenerate case.
//! Its numerics must be bit-identical through the family path, and a
//! family calibration over a reduced registry family must run end-to-end,
//! reporting per-member and aggregate discrepancies.

use simcal::calib::{calibrate_with_workers, Budget, RandomSearch};
use simcal::groundtruth::TruthParams;
use simcal::platform::PlatformKind;
use simcal::sim::{ScenarioRegistry, SimSession};
use simcal::storage::XRootDConfig;
use simcal::study::{param_space, CaseObjective, CaseStudy, FamilyObjective};

fn reduced_truth() -> TruthParams {
    let mut truth = TruthParams::case_study();
    truth.granularity = XRootDConfig::new(8e6, 2e6);
    truth
}

#[test]
fn single_platform_calibration_is_unchanged_through_the_family_path() {
    // The same algorithm, seed, and budget driven against (a) the classic
    // CaseObjective and (b) a FamilyObjective wrapping its single member
    // must walk the identical trajectory and land on the identical result
    // — bit-for-bit, including the best values.
    let case = CaseStudy::generate_reduced();
    let space = param_space();
    let obj = CaseObjective::new(&case, PlatformKind::Scsn, &[0.0, 1.0], XRootDConfig::paper_1s());
    let fam = FamilyObjective::new(vec![obj.member().clone()]);

    let a = calibrate_with_workers(
        &mut RandomSearch::new(7),
        &obj,
        &space,
        Budget::Evaluations(8),
        Some(1),
    );
    let b = calibrate_with_workers(
        &mut RandomSearch::new(7),
        &fam,
        &space,
        Budget::Evaluations(8),
        Some(1),
    );
    assert_eq!(a.best_error.to_bits(), b.best_error.to_bits());
    let av: Vec<u64> = a.best_values.iter().map(|v| v.to_bits()).collect();
    let bv: Vec<u64> = b.best_values.iter().map(|v| v.to_bits()).collect();
    assert_eq!(av, bv);
    assert_eq!(a.evaluations, b.evaluations);
}

#[test]
fn family_calibration_runs_end_to_end_on_a_reduced_family() {
    let fam = FamilyObjective::from_registry(
        &ScenarioRegistry::reduced(),
        "deepcache",
        &[0.0, 0.5, 1.0],
        &reduced_truth(),
    )
    .unwrap();
    assert_eq!(fam.members().len(), 3);

    let space = param_space();
    let result = calibrate_with_workers(
        &mut RandomSearch::new(11),
        &fam,
        &space,
        Budget::Evaluations(10),
        Some(2),
    );
    assert!(result.best_error.is_finite() && result.best_error >= 0.0);
    assert_eq!(result.evaluations, 10);
    assert_eq!(result.best_values.len(), 4);

    // Per-member + aggregate report: the members' scores at the best
    // point reproduce the reported aggregate exactly.
    let mut session = SimSession::new();
    let scores = fam.member_scores_session(&mut session, &result.best_values);
    assert_eq!(scores.len(), fam.members().len());
    assert!(scores.iter().all(|s| s.is_finite() && *s >= 0.0));
    assert_eq!(FamilyObjective::aggregate(&scores).to_bits(), result.best_error.to_bits());
}

#[test]
fn family_evaluation_is_deterministic_across_worker_counts() {
    // The evaluator hot path (pooled per-worker sessions) must give the
    // same recorded errors at 1 and 4 workers — family objectives inherit
    // the repo-wide determinism contract.
    let fam = FamilyObjective::from_registry(
        &ScenarioRegistry::reduced(),
        "straggler",
        &[0.5],
        &reduced_truth(),
    )
    .unwrap();
    let space = param_space();
    let serial = calibrate_with_workers(
        &mut RandomSearch::new(3),
        &fam,
        &space,
        Budget::Evaluations(6),
        Some(1),
    );
    let parallel = calibrate_with_workers(
        &mut RandomSearch::new(3),
        &fam,
        &space,
        Budget::Evaluations(6),
        Some(4),
    );
    assert_eq!(serial.best_error.to_bits(), parallel.best_error.to_bits());
    assert_eq!(serial.best_values, parallel.best_values);
}

#[test]
fn shared_parameters_constrain_mixed_cache_flavours() {
    // The "csn" slice of the paper family pairs a slow-cache member
    // (SCSN: local reads hit the HDD) with a fast-cache member (FCSN:
    // local reads hit the page cache) behind the same 1 Gbps WAN. The
    // calibration's 4-vector is *shared*: one WAN value serves both
    // members, and the local-read slot routes to a different device per
    // member. Correcting the shared WAN toward its true effective value
    // (1.15 Gbps) must therefore improve BOTH members at once — the
    // cross-member coupling family calibration exploits.
    let truth = reduced_truth();
    let fam =
        FamilyObjective::from_registry(&ScenarioRegistry::reduced(), "csn", &[0.0, 1.0], &truth)
            .unwrap();
    let names: Vec<&str> = fam.members().iter().map(|m| m.name()).collect();
    assert_eq!(names, ["cms-scsn", "cms-fcsn"]);

    let mut session = SimSession::new();
    let wan_right = [1e9, 1e9, 1.25e9, truth.wan_bw_slow];
    let wan_wrong = [1e9, 1e9, 1.25e9, 1.25e9]; // 10 Gbps on a 1 Gbps link
    let right = fam.member_scores_session(&mut session, &wan_right);
    let wrong = fam.member_scores_session(&mut session, &wan_wrong);
    for ((name, r), w) in names.iter().zip(&right).zip(&wrong) {
        assert!(r < w, "{name}: corrected WAN should improve MRE ({r} vs {w})");
    }
    assert!(FamilyObjective::aggregate(&right) < FamilyObjective::aggregate(&wrong));
}
