//! Shape tests for the paper's headline results, run on the reduced case
//! study at budgets where the algorithms can converge (the table-module
//! unit tests only check structure at starvation budgets).

use std::sync::Arc;
use std::sync::OnceLock;

use simcal::calib::{calibrate_with_workers, Budget, GradientDescent, Objective, RandomSearch};
use simcal::platform::PlatformKind;
use simcal::storage::XRootDConfig;
use simcal::study::{param_space, CaseObjective, CaseStudy, HumanCalibration};

fn case() -> Arc<CaseStudy> {
    static CASE: OnceLock<Arc<CaseStudy>> = OnceLock::new();
    CASE.get_or_init(|| Arc::new(CaseStudy::generate_reduced())).clone()
}

const G: fn() -> XRootDConfig = XRootDConfig::paper_1s;

/// Table III's headline: on the fast-cache platforms, where HUMAN's 1 GBps
/// page-cache assumption is ~10x off, automated calibration wins big.
#[test]
fn table_iii_shape_automated_beats_human_on_fc_platforms() {
    let case = case();
    let human = HumanCalibration::perform(&case);
    let space = param_space();
    for kind in [PlatformKind::Fcfn, PlatformKind::Fcsn] {
        let obj = CaseObjective::full(&case, kind, G());
        let human_mre = obj.score_hardware(&human.hardware(kind));
        let mut algo = GradientDescent::fixed(42);
        let r = calibrate_with_workers(&mut algo, &obj, &space, Budget::Evaluations(250), Some(1));
        assert!(
            r.best_error < human_mre,
            "{}: GDFix {:.2}% should beat HUMAN {:.2}%",
            kind.label(),
            r.best_error,
            human_mre
        );
        // On the reduced study the per-node cache contention is milder than
        // at full scale (where HUMAN's FC-platform MRE runs into the
        // hundreds of percent), but the assumption must still hurt.
        assert!(
            human_mre > 15.0,
            "{}: HUMAN should suffer from the page-cache assumption, got {human_mre:.2}%",
            kind.label()
        );
    }
}

/// Table IV's identifiability result: on SCSN the disk is the bottleneck,
/// so independent methods agree on it while disagreeing (widely) elsewhere.
#[test]
fn table_iv_shape_bottleneck_parameter_is_identified() {
    let case = case();
    let space = param_space();
    let obj = CaseObjective::full(&case, PlatformKind::Scsn, G());

    let mut disks = Vec::new();
    let mut wans = Vec::new();
    let mut gd = GradientDescent::fixed(7);
    let r1 = calibrate_with_workers(&mut gd, &obj, &space, Budget::Evaluations(250), Some(1));
    disks.push(r1.best_values[1]);
    wans.push(r1.best_values[3]);
    let mut rs = RandomSearch::new(7);
    let r2 = calibrate_with_workers(&mut rs, &obj, &space, Budget::Evaluations(250), Some(1));
    disks.push(r2.best_values[1]);
    wans.push(r2.best_values[3]);

    // Both methods identify the effective HDD bandwidth within a factor 2.
    let truth_eff = simcal::des::CapacityModel::Degrading {
        base: case.truth.disk_bw,
        alpha: case.truth.disk_contention_alpha,
    }
    .effective(12);
    for (i, &d) in disks.iter().enumerate() {
        let ratio = d / truth_eff;
        assert!((0.5..2.0).contains(&ratio), "method {i}: disk ratio {ratio}");
    }
    // The two disk estimates agree with each other much more tightly than
    // the WAN estimates do (relative spread comparison).
    let spread = |a: f64, b: f64| (a.max(b) / a.min(b)).log2();
    assert!(
        spread(disks[0], disks[1]) < spread(wans[0], wans[1]) + 1.0,
        "disk estimates should agree more than WAN estimates: disks {disks:?} wans {wans:?}"
    );
}

/// Table V's robustness ordering: calibrating on one extreme ICD value
/// generalizes far worse than calibrating on a diverse 3-element subset.
#[test]
fn table_v_shape_extreme_single_icd_is_catastrophic() {
    let case = case();
    let space = param_space();
    let scorer = CaseObjective::full(&case, PlatformKind::Fcsn, G());

    let run = |icds: &[f64]| -> f64 {
        let obj = CaseObjective::new(&case, PlatformKind::Fcsn, icds, G());
        let mut algo = GradientDescent::fixed(42);
        let r =
            calibrate_with_workers(&mut algo, &obj, &space, Budget::SimulatedCost(4.0), Some(1));
        scorer.evaluate(&r.best_values)
    };

    let extreme = run(&[1.0]);
    let diverse = run(&[0.3, 0.5, 1.0]);
    assert!(
        extreme > 2.0 * diverse,
        "single extreme ICD ({extreme:.1}%) should generalize much worse than a diverse \
         subset ({diverse:.1}%)"
    );
}

/// Table VI's budget mechanism end-to-end: under one simulated-cost budget,
/// the coarse/fast granularity affords far more evaluations than the fine
/// one and (with everything else equal) calibrates at least as well.
#[test]
fn table_vi_shape_faster_simulator_explores_more() {
    let case = case();
    let space = param_space();
    let budget = 3.0;

    let run = |g: XRootDConfig| {
        let obj = CaseObjective::full(&case, PlatformKind::Fcsn, g);
        let mut algo = RandomSearch::new(42);
        calibrate_with_workers(&mut algo, &obj, &space, Budget::SimulatedCost(budget), Some(1))
    };
    let fast = run(XRootDConfig::paper_1s());
    let slow = run(XRootDConfig::new(2e6, 0.5e6)); // finer than any paper setting
    assert!(
        fast.evaluations > 3 * slow.evaluations,
        "fast {} vs slow {} evaluations",
        fast.evaluations,
        slow.evaluations
    );
}
