//! Hostile-input properties for the wire codec and framing layer.
//!
//! The TCP transport feeds whatever arrives off the socket into these
//! decoders, and the fault-injection harness deliberately truncates and
//! corrupts frames in flight. The contract under hostility is uniform:
//! **a structured error, never a panic** — for truncations at arbitrary
//! offsets, single-bit flips, absurd length prefixes, garbage bodies,
//! and pathologically nested payloads.

use std::io::Cursor;

use proptest::prelude::*;

use simcal::sim::codec::{
    decode_msg, decode_scenario, encode_msg, encode_scenario, read_frame, write_frame, CodecError,
    FrameError, Json, WireMsg, MAX_FRAME_LEN,
};
use simcal::sim::ScenarioRegistry;
use simcal::study::dist::{decode_sweep_result, encode_sweep_result};
use simcal::study::SweepRunner;

/// A representative corpus of valid wire texts to mutate: a scenario, a
/// sweep result, and one of each protocol message (v4 lock-step forms
/// and the v5 windowed/auth forms alike).
fn corpus() -> Vec<String> {
    let grid = ScenarioRegistry::reduced().scenarios();
    let sc = &grid[0];
    let scenario_json = || Json::parse(&encode_scenario(sc)).unwrap();
    let result = &SweepRunner::new().with_workers(1).run(&grid[..1])[0];
    let payload = Json::parse(&encode_sweep_result(result)).unwrap();
    vec![
        encode_scenario(sc),
        encode_sweep_result(result),
        encode_msg(&WireMsg::Hello {
            worker: "prop-worker".to_string(),
            threads: 4,
            engine_shards: 2,
        }),
        encode_msg(&WireMsg::Claim),
        encode_msg(&WireMsg::ClaimN { max: 8, holding: vec![3, 11, u64::MAX] }),
        encode_msg(&WireMsg::Task { index: 7, scenario: scenario_json() }),
        encode_msg(&WireMsg::TaskBatch { tasks: vec![(7, scenario_json()), (9, scenario_json())] }),
        encode_msg(&WireMsg::TaskBatch { tasks: vec![] }),
        encode_msg(&WireMsg::AuthChallenge { nonce: 0x5EED_CAFE_1234_5678 }),
        encode_msg(&WireMsg::AuthProof { mac: "ab".repeat(32) }),
        encode_msg(&WireMsg::Reject { reason: "bad auth token".to_string() }),
        encode_msg(&WireMsg::Result { index: 7, sum: 0xDEAD_BEEF, payload }),
        encode_msg(&WireMsg::Heartbeat { inflight: Some(3) }),
        encode_msg(&WireMsg::Drain),
        encode_msg(&WireMsg::Bye),
    ]
}

/// Run every decoder over the text. The only acceptable outcomes are
/// `Ok` or a structured `Err`; a panic fails the test by unwinding.
fn feed_all_decoders(text: &str) {
    let _ = decode_scenario(text);
    let _ = decode_sweep_result(text);
    let _ = decode_msg(text);
    let _ = Json::parse(text);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Truncating a valid payload at any byte offset never panics any
    /// decoder, and a strict prefix of a message never decodes to a
    /// well-formed protocol message (the framing layer relies on this:
    /// a cut-short body surfaces as an error, not a silent half-task).
    #[test]
    fn truncations_at_every_offset_are_structured_errors(which in 0usize..15, cut in 0usize..4096) {
        let corpus = corpus();
        let text = &corpus[which % corpus.len()];
        let cut = cut % text.len();
        if let Some(prefix) = text.get(..cut) {
            feed_all_decoders(prefix);
            if cut > 0 {
                prop_assert!(
                    decode_msg(prefix).is_err(),
                    "a strict prefix decoded as a protocol message"
                );
            }
        }
    }

    /// Flipping a single bit anywhere in a valid payload never panics.
    /// (Mutations that break UTF-8 are exercised at the framing layer
    /// below, where raw bytes arrive before any `str` exists.)
    #[test]
    fn single_bit_flips_never_panic(which in 0usize..15, byte in 0usize..4096, bit in 0u32..8) {
        let corpus = corpus();
        let mut bytes = corpus[which % corpus.len()].clone().into_bytes();
        let i = byte % bytes.len();
        bytes[i] ^= 1u8 << bit;
        if let Ok(text) = String::from_utf8(bytes) {
            feed_all_decoders(&text);
        }
    }

    /// Arbitrary garbage bytes through the framing layer: a syntactically
    /// valid frame (length prefix + body) whose body is noise must come
    /// back as `Codec`, never a panic — whatever the bytes.
    #[test]
    fn garbage_frame_bodies_are_codec_errors(body in proptest::collection::vec(0u32..256, 0..512)) {
        let body: Vec<u8> = body.into_iter().map(|b| b as u8).collect();
        let mut framed = (body.len() as u32).to_be_bytes().to_vec();
        framed.extend_from_slice(&body);
        match read_frame(&mut Cursor::new(framed)) {
            Ok(_) => {} // astronomically unlikely, but legal
            Err(FrameError::Codec(_)) => {}
            Err(other) => prop_assert!(false, "garbage body gave {other:?}, expected Codec"),
        }
    }

    /// A frame whose length prefix promises more bytes than follow is a
    /// truncated frame: `Io`, not a hang and not a panic.
    #[test]
    fn short_frame_bodies_are_io_errors(declared in 1u32..4096, supplied in 0usize..2048) {
        let supplied = supplied.min(declared as usize - 1);
        let mut framed = declared.to_be_bytes().to_vec();
        framed.extend(std::iter::repeat_n(b'x', supplied));
        match read_frame(&mut Cursor::new(framed)) {
            Err(FrameError::Io(_)) => {}
            other => prop_assert!(false, "truncated frame gave {other:?}, expected Io"),
        }
    }
}

#[test]
fn oversized_length_prefixes_are_rejected_before_allocation() {
    for len in [MAX_FRAME_LEN as u32 + 1, u32::MAX, u32::MAX - 7] {
        let mut framed = len.to_be_bytes().to_vec();
        framed.extend_from_slice(b"whatever");
        match read_frame(&mut Cursor::new(framed)) {
            Err(FrameError::Oversized(n)) => assert_eq!(n, len as usize),
            other => panic!("length {len} gave {other:?}, expected Oversized"),
        }
    }
}

#[test]
fn non_utf8_frame_bodies_are_codec_errors() {
    let body = [0xFFu8, 0xFE, 0x80, 0x80];
    let mut framed = (body.len() as u32).to_be_bytes().to_vec();
    framed.extend_from_slice(&body);
    match read_frame(&mut Cursor::new(framed)) {
        Err(FrameError::Codec(CodecError::Parse { msg, .. })) => {
            assert!(msg.contains("UTF-8"), "unexpected message: {msg}")
        }
        other => panic!("non-UTF-8 body gave {other:?}, expected a Parse error"),
    }
}

#[test]
fn empty_and_zero_length_frames_are_handled() {
    // A zero-length body is an empty string: a parse error, not a panic.
    let framed = 0u32.to_be_bytes().to_vec();
    assert!(matches!(read_frame(&mut Cursor::new(framed)), Err(FrameError::Codec(_))));
    // No bytes at all is a clean close at a frame boundary.
    assert!(matches!(read_frame(&mut Cursor::new(Vec::new())), Err(FrameError::Closed)));
    // A partial length prefix is a truncated frame.
    assert!(matches!(read_frame(&mut Cursor::new(vec![0u8, 0])), Err(FrameError::Io(_))));
}

#[test]
fn deeply_nested_payloads_are_depth_errors_not_stack_overflows() {
    for depth in [200usize, 2_000, 200_000] {
        let text = format!("{}{}", "[".repeat(depth), "]".repeat(depth));
        for outcome in
            [Json::parse(&text).err(), decode_scenario(&text).err(), decode_msg(&text).err()]
        {
            let err = outcome.expect("pathological nesting must not decode");
            let msg = err.to_string();
            assert!(
                msg.contains("depth") || msg.contains("nest"),
                "depth {depth}: unexpected error {msg:?}"
            );
        }
        // The same bytes arriving as a frame body get the same treatment.
        let mut framed = (text.len() as u32).to_be_bytes().to_vec();
        framed.extend_from_slice(text.as_bytes());
        assert!(matches!(read_frame(&mut Cursor::new(framed)), Err(FrameError::Codec(_))));
    }
}

#[test]
fn batch_size_extremes_round_trip_and_fail_cleanly_when_cut() {
    // A zero-length batch is a legal nudge frame, not an error.
    let empty = encode_msg(&WireMsg::TaskBatch { tasks: vec![] });
    match decode_msg(&empty) {
        Ok(WireMsg::TaskBatch { tasks }) => assert!(tasks.is_empty()),
        other => panic!("empty batch gave {other:?}"),
    }

    // A 65,536-element batch round-trips intact: every index survives,
    // in order, with its payload. (Indices are encoded as decimal
    // strings, so large values are exact.)
    let tasks: Vec<(u64, Json)> =
        (0..65_536u64).map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15), Json::Null)).collect();
    let text = encode_msg(&WireMsg::TaskBatch { tasks: tasks.clone() });
    match decode_msg(&text) {
        Ok(WireMsg::TaskBatch { tasks: back }) => assert_eq!(back, tasks),
        other => panic!("65k batch failed to decode: {other:?}"),
    }

    // The same giant batch cut anywhere short of its full length is a
    // structured error, never a partial batch: a truncated frame body
    // must not surface as a shorter-but-plausible task list.
    for cut in [1, text.len() / 2, text.len() - 1] {
        if let Some(prefix) = text.get(..cut) {
            assert!(decode_msg(prefix).is_err(), "a cut batch decoded at offset {cut}");
        }
    }
    // And through the framing layer: a frame whose length prefix claims
    // the full body but delivers half of it is an Io error.
    let body = text.as_bytes();
    let mut framed = (body.len() as u32).to_be_bytes().to_vec();
    framed.extend_from_slice(&body[..body.len() / 2]);
    assert!(matches!(read_frame(&mut Cursor::new(framed)), Err(FrameError::Io(_))));
}

#[test]
fn nested_but_legal_unknown_fields_still_decode() {
    // Hostility must not cost forward compatibility: a message carrying a
    // deeply-but-legally nested unknown field still decodes.
    let mut nested = String::from("null");
    for _ in 0..100 {
        nested = format!("[{nested}]");
    }
    let text = format!(r#"{{"v":4,"type":"heartbeat","inflight":2,"future_field":{nested}}}"#);
    match decode_msg(&text) {
        Ok(WireMsg::Heartbeat { inflight: Some(2) }) => {}
        other => panic!("forward-compatible payload gave {other:?}"),
    }
}

/// A frame round trip through `write_frame` and a hostile mid-stream cut:
/// every split point of a multi-frame stream either yields the frames
/// before the cut plus a structured error, or a clean `Closed`.
#[test]
fn every_split_of_a_frame_stream_fails_cleanly() {
    let msgs =
        [WireMsg::Claim, WireMsg::Heartbeat { inflight: None }, WireMsg::Drain, WireMsg::Bye];
    let mut stream = Vec::new();
    let mut boundaries = vec![0usize];
    for m in &msgs {
        write_frame(&mut stream, m).unwrap();
        boundaries.push(stream.len());
    }
    for cut in 0..=stream.len() {
        let mut cursor = Cursor::new(&stream[..cut]);
        let mut decoded = 0;
        loop {
            match read_frame(&mut cursor) {
                Ok(_) => decoded += 1,
                Err(FrameError::Closed) => {
                    // Clean close: only legal exactly on a frame boundary.
                    assert!(boundaries.contains(&cut), "clean close mid-frame at {cut}");
                    break;
                }
                Err(FrameError::Io(_)) => {
                    assert!(!boundaries.contains(&cut), "truncation error on a boundary at {cut}");
                    break;
                }
                Err(other) => panic!("cut at {cut}: unexpected {other}"),
            }
        }
        let whole_frames = boundaries.iter().filter(|b| **b <= cut && **b > 0).count();
        assert_eq!(decoded, whole_frames, "cut at {cut} decoded the wrong frame count");
    }
}
